package client

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flit/internal/metrics"
	"flit/internal/server"
	"flit/internal/workload"
)

// Spec describes one timed load-generation run against a flitstored
// server: a YCSB mix over pipelined connections.
//
// Closed loop (Rate == 0): each connection keeps a pipeline window of
// Depth request frames outstanding — send the window, flush once (so
// the server group-commits the whole window), read it back, repeat.
// Latency is the client-observed window round trip per operation.
//
// Open loop (Rate > 0): operations arrive on a fixed schedule at Rate
// ops/s total, split evenly across connections, regardless of how fast
// responses return. Latency is measured from the scheduled arrival, so
// queueing delay under overload is charged to the server — the
// coordinated-omission-free spelling, matching the workload runner's
// open-loop mode.
type Spec struct {
	Mix     string
	Dist    string
	ZipfS   float64
	Records uint64
	ScanMax int

	Conns    int           // parallel connections (default 1)
	Depth    int           // closed-loop pipeline frames per conn (default 1)
	Rate     float64       // open-loop total ops/s; 0 selects closed loop
	Duration time.Duration // measured window
	Seed     int64

	// MaxInflight caps outstanding request frames per open-loop
	// connection (default 1024). When the schedule outruns the server,
	// arrivals over the cap are DROPPED and counted (Result.Dropped)
	// instead of queueing unboundedly — the open loop honors
	// backpressure the way a real ingress would, rather than modeling an
	// infinite client-side buffer. Closed loop is inherently bounded by
	// Depth and ignores this.
	MaxInflight int

	// Progress, when set, is called about once per ProgressEvery
	// (default 1s) from a monitor goroutine with a live snapshot of the
	// run. The workers record into one shared lock-free histogram
	// (internal/metrics), so the monitor reads without stopping them.
	Progress      func(Progress)
	ProgressEvery time.Duration
}

// Progress is one live snapshot of a running load generation, delivered
// to Spec.Progress. Ops is cumulative; the rate and quantiles cover the
// interval since the previous callback.
type Progress struct {
	Elapsed   time.Duration // since the measured window opened
	Ops       uint64        // operations completed so far
	OpsPerSec float64       // interval throughput
	P50       time.Duration // interval client-observed latency
	P99       time.Duration
}

// Result aggregates one run: client-observed throughput and latency,
// plus the server-side instruction deltas (via STATS) that make the
// group-commit amortization visible — PWBs and fences per acknowledged
// operation.
type Result struct {
	Mix     string        `json:"mix"`
	Dist    string        `json:"dist"`
	Conns   int           `json:"conns"`
	Depth   int           `json:"depth"`
	Rate    float64       `json:"rate,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`

	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`

	Reads   uint64 `json:"reads"`
	Updates uint64 `json:"updates"`
	Inserts uint64 `json:"inserts"`
	RMWs    uint64 `json:"rmws"`
	Scans   uint64 `json:"scans"`

	// Backpressure accounting. Ops/OpsPerSec count only completed
	// operations, so OpsPerSec is the goodput; Shed counts operations
	// the server rejected with BUSY/DRAINING (per-op, never recorded in
	// the latency histogram), Dropped counts open-loop arrivals the
	// client never sent because the inflight cap was hit, and ShedRate
	// is Shed/(Ops+Shed). ServerShed is the server's own shed counter
	// delta over the window — the two sides must agree within the final
	// pipeline round.
	Shed       uint64  `json:"shed,omitempty"`
	Dropped    uint64  `json:"dropped,omitempty"`
	ShedRate   float64 `json:"shed_rate,omitempty"`
	ServerShed uint64  `json:"server_shed,omitempty"`

	// Server-side deltas over the run window.
	ServerOps     uint64  `json:"server_ops"`
	ServerBatches uint64  `json:"server_batches"`
	PWBs          uint64  `json:"pwbs"`
	PFences       uint64  `json:"pfences"`
	PWBsPerOp     float64 `json:"pwbs_per_op"`
	PFencesPerOp  float64 `json:"pfences_per_op"`
	OpsPerBatch   float64 `json:"ops_per_batch"`

	// Server-side op service-time quantiles from the STATS v2 metrics
	// block — cumulative over the server's lifetime, zero when the
	// server runs without its metrics core. Service time excludes the
	// shared group-commit fence (visible separately as ServerCommitP99),
	// so these sit far below the client round-trip quantiles: the gap is
	// queueing plus the fence.
	ServerP50       time.Duration `json:"server_p50_ns,omitempty"`
	ServerP95       time.Duration `json:"server_p95_ns,omitempty"`
	ServerP99       time.Duration `json:"server_p99_ns,omitempty"`
	ServerOpMax     time.Duration `json:"server_op_max_ns,omitempty"`
	ServerCommitP99 time.Duration `json:"server_commit_p99_ns,omitempty"`
}

// Load bulk-inserts key indices [0, records) through conns pipelined
// connections (the YCSB load phase over the wire).
func Load(dial func() (net.Conn, error), records uint64, conns, depth int) error {
	if conns < 1 {
		conns = 1
	}
	if depth < 1 {
		depth = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nc, err := dial()
			if err != nil {
				errs[w] = err
				return
			}
			c := New(nc)
			defer c.Close()
			keyBuf := make([]byte, 0, 32)
			req := server.Request{Op: server.OpPut}
			for i := uint64(w); i < records; i += uint64(conns) {
				keyBuf = workload.AppendKey(keyBuf[:0], i)
				req.Key, req.Val = keyBuf, i
				c.Send(&req)
				if c.Pending() >= depth {
					if errs[w] = drain(c); errs[w] != nil {
						return
					}
				}
			}
			errs[w] = drain(c)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// drain flushes and receives every in-flight response.
func drain(c *Conn) error {
	if err := c.Flush(); err != nil {
		return err
	}
	for c.Pending() > 0 {
		if _, err := c.Recv(); err != nil {
			return err
		}
	}
	return nil
}

// frames returns the number of request frames op expands to: RMW is a
// pipelined GET+PUT (the blind-update approximation — a pipelined
// client cannot fold the read into the write without stalling), Scan a
// burst of ScanLen GETs.
func frames(op workload.Op) int {
	switch op.Kind {
	case workload.ReadModifyWrite:
		return 2
	case workload.Scan:
		return op.ScanLen
	default:
		return 1
	}
}

// sendOp pipelines op's frames through send, reusing keyBuf.
func sendOp(send func(*server.Request), op workload.Op, keyBuf *[]byte, limit *atomic.Uint64) {
	var req server.Request
	switch op.Kind {
	case workload.Read:
		*keyBuf = workload.AppendKey((*keyBuf)[:0], op.Key)
		req = server.Request{Op: server.OpGet, Key: *keyBuf}
		send(&req)
	case workload.Update, workload.Insert:
		*keyBuf = workload.AppendKey((*keyBuf)[:0], op.Key)
		req = server.Request{Op: server.OpPut, Key: *keyBuf, Val: op.Key}
		send(&req)
	case workload.ReadModifyWrite:
		*keyBuf = workload.AppendKey((*keyBuf)[:0], op.Key)
		req = server.Request{Op: server.OpGet, Key: *keyBuf}
		send(&req)
		req = server.Request{Op: server.OpPut, Key: *keyBuf, Val: op.Key + 1}
		send(&req)
	case workload.Scan:
		n := limit.Load()
		for j := uint64(0); j < uint64(op.ScanLen); j++ {
			*keyBuf = workload.AppendKey((*keyBuf)[:0], (op.Key+j)%n)
			req = server.Request{Op: server.OpGet, Key: *keyBuf}
			send(&req)
		}
	}
}

// opcodeAt returns the request opcode of frame i of an operation of the
// given kind (the open-loop receiver's decode key).
func opcodeAt(kind workload.OpKind, i int) byte {
	switch kind {
	case workload.Update, workload.Insert:
		return server.OpPut
	case workload.ReadModifyWrite:
		if i == 1 {
			return server.OpPut
		}
		return server.OpGet
	default:
		return server.OpGet
	}
}

// Run drives the spec against the server behind dial and aggregates
// client-side latency with server-side instruction deltas.
func Run(dial func() (net.Conn, error), sp Spec) (Result, error) {
	mix, err := workload.MixByName(sp.Mix)
	if err != nil {
		return Result{}, err
	}
	if sp.Records == 0 {
		return Result{}, fmt.Errorf("client: spec needs Records > 0")
	}
	if sp.Conns < 1 {
		sp.Conns = 1
	}
	if sp.Depth < 1 {
		sp.Depth = 1
	}
	if sp.Dist == "" {
		sp.Dist = workload.DistUniform
	}

	var limit atomic.Uint64
	limit.Store(sp.Records)
	gens := make([]*workload.Generator, sp.Conns)
	for w := range gens {
		g, err := workload.NewGenerator(mix, sp.Dist, sp.ZipfS, sp.Records, &limit, sp.ScanMax, 0, sp.Seed+int64(w)*7919)
		if err != nil {
			return Result{}, err
		}
		gens[w] = g
	}

	statsNC, err := dial()
	if err != nil {
		return Result{}, err
	}
	statsConn := New(statsNC)
	defer statsConn.Close()
	before, err := statsConn.Stats()
	if err != nil {
		return Result{}, err
	}

	// All workers record into one shared lock-free histogram so the
	// progress monitor (and nothing else) can read mid-run without
	// synchronizing with the hot path.
	shared := metrics.NewHist()
	counts := make([]workerCounts, sp.Conns)
	errs := make([]error, sp.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(sp.Duration)

	monDone := make(chan struct{})
	var monWG sync.WaitGroup
	if sp.Progress != nil {
		every := sp.ProgressEvery
		if every <= 0 {
			every = time.Second
		}
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			var prev metrics.HistSnapshot
			prevT := start
			for {
				select {
				case <-monDone:
					return
				case <-tick.C:
				}
				var cur metrics.HistSnapshot
				shared.Read(&cur)
				now := time.Now()
				interval := cur
				interval.Sub(&prev)
				p := Progress{
					Elapsed: now.Sub(start),
					Ops:     cur.Count,
					P50:     time.Duration(interval.Quantile(0.50)),
					P99:     time.Duration(interval.Quantile(0.99)),
				}
				if dt := now.Sub(prevT).Seconds(); dt > 0 {
					p.OpsPerSec = float64(interval.Count) / dt
				}
				sp.Progress(p)
				prev, prevT = cur, now
			}
		}()
	}

	for w := 0; w < sp.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nc, err := dial()
			if err != nil {
				errs[w] = err
				return
			}
			c := New(nc)
			defer c.Close()
			if sp.Rate > 0 {
				errs[w] = runOpen(c, gens[w], &limit, shared, &counts[w], deadline, sp.Rate, sp.MaxInflight, w, sp.Conns)
			} else {
				errs[w] = runClosed(c, gens[w], &limit, shared, &counts[w], deadline, sp.Depth)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(monDone)
	monWG.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	after, err := statsConn.Stats()
	if err != nil {
		return Result{}, err
	}

	var all metrics.HistSnapshot
	shared.Read(&all)
	var sum workerCounts
	for w := range counts {
		for k, n := range counts[w].kinds {
			sum.kinds[k] += n
		}
		sum.shed += counts[w].shed
		sum.dropped += counts[w].dropped
	}
	res := Result{
		Mix: sp.Mix, Dist: sp.Dist, Conns: sp.Conns, Depth: sp.Depth, Rate: sp.Rate,
		Elapsed: elapsed, Ops: all.Count,
		P50: time.Duration(all.Quantile(0.50)), P95: time.Duration(all.Quantile(0.95)),
		P99: time.Duration(all.Quantile(0.99)), Max: time.Duration(all.MaxNs),
		Reads:   sum.kinds[workload.Read],
		Updates: sum.kinds[workload.Update],
		Inserts: sum.kinds[workload.Insert],
		RMWs:    sum.kinds[workload.ReadModifyWrite],
		Scans:   sum.kinds[workload.Scan],

		Shed:    sum.shed,
		Dropped: sum.dropped,

		ServerOps:     after.OpsServed - before.OpsServed,
		ServerBatches: after.Batches - before.Batches,
		PWBs:          after.PWBs - before.PWBs,
		PFences:       after.PFences - before.PFences,
		ServerShed:    (after.ShedBusy + after.ShedDraining) - (before.ShedBusy + before.ShedDraining),
	}
	if total := res.Ops + res.Shed; total > 0 {
		res.ShedRate = float64(res.Shed) / float64(total)
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	if res.ServerOps > 0 {
		res.PWBsPerOp = float64(res.PWBs) / float64(res.ServerOps)
		res.PFencesPerOp = float64(res.PFences) / float64(res.ServerOps)
	}
	if res.ServerBatches > 0 {
		res.OpsPerBatch = float64(res.ServerOps) / float64(res.ServerBatches)
	}
	if m := after.Metrics; m != nil {
		res.ServerP50 = time.Duration(m.OpP50Ns)
		res.ServerP95 = time.Duration(m.OpP95Ns)
		res.ServerP99 = time.Duration(m.OpP99Ns)
		res.ServerOpMax = time.Duration(m.OpMaxNs)
		res.ServerCommitP99 = time.Duration(m.CommitP99Ns)
	}
	return res, nil
}

// workerCounts is one worker's non-latency tallies: completed ops by
// kind, ops the server shed (BUSY/DRAINING), and open-loop arrivals
// dropped at the inflight cap.
type workerCounts struct {
	kinds   [5]uint64
	shed    uint64
	dropped uint64
}

// runClosed is the closed-loop worker: fill a Depth-frame window, flush
// once, read it back, recording one latency per logical operation. An
// operation with any frame answered BUSY counts as shed, not completed;
// a DRAINING answer ends the worker (the server is going away).
func runClosed(c *Conn, g *workload.Generator, limit *atomic.Uint64,
	h *metrics.Hist, wc *workerCounts, deadline time.Time, depth int) error {
	keyBuf := make([]byte, 0, 32)
	winOps := make([]workload.Op, 0, depth)
	for time.Now().Before(deadline) {
		winOps = winOps[:0]
		framesSent := 0
		for framesSent < depth {
			op := g.Next()
			winOps = append(winOps, op)
			sendOp(c.Send, op, &keyBuf, limit)
			framesSent += frames(op)
		}
		t0 := time.Now()
		if err := c.Flush(); err != nil {
			return err
		}
		draining := false
		for _, op := range winOps {
			shed := false
			for f := frames(op); f > 0; f-- {
				resp, err := c.Recv()
				if err != nil {
					return err
				}
				switch resp.Status {
				case server.StatusBusy:
					shed = true
				case server.StatusDraining:
					shed, draining = true, true
				}
			}
			if shed {
				wc.shed++
				continue
			}
			h.Record(time.Since(t0))
			wc.kinds[op.Kind]++
		}
		if draining {
			return nil
		}
	}
	return nil
}

// openMeta carries one scheduled operation from the open-loop sender to
// its receiver.
type openMeta struct {
	sched  time.Time
	frames int
	kind   workload.OpKind
}

// runOpen is the open-loop worker pair: the sender fires operations at
// their scheduled arrival times; the receiver records latency from the
// schedule, not from the send — queueing is part of the measurement.
// The sender honors backpressure: when maxInflight frames are already
// outstanding, the scheduled arrival is dropped and counted instead of
// queueing without bound. Ops the server sheds with BUSY/DRAINING count
// as shed, not completed.
func runOpen(c *Conn, g *workload.Generator, limit *atomic.Uint64,
	h *metrics.Hist, wc *workerCounts, deadline time.Time, rate float64, maxInflight, w, conns int) error {
	if rate <= 0 {
		return fmt.Errorf("client: open loop needs a positive rate")
	}
	if maxInflight <= 0 {
		maxInflight = 1024
	}
	step, offset := workload.OpenLoopSchedule(rate, w, conns)
	ch := make(chan openMeta, 1<<14)
	var inflight atomic.Int64 // outstanding frames, sender adds / receiver subtracts
	var sendErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ch)
		keyBuf := make([]byte, 0, 32)
		next := time.Now().Add(offset)
		for next.Before(deadline) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			op := g.Next()
			nf := frames(op)
			if inflight.Load()+int64(nf) > int64(maxInflight) {
				wc.dropped++ // sender-owned field; the receiver never touches it
				next = next.Add(step)
				continue
			}
			inflight.Add(int64(nf))
			sendOp(c.SendUntracked, op, &keyBuf, limit)
			if sendErr = c.Flush(); sendErr != nil {
				return
			}
			ch <- openMeta{sched: next, frames: nf, kind: op.Kind}
			next = next.Add(step)
		}
	}()
	var recvErr error
	for m := range ch {
		if recvErr != nil {
			continue // drain the channel so the sender never blocks
		}
		shed := false
		for f := 0; f < m.frames; f++ {
			resp, err := c.RecvFor(opcodeAt(m.kind, f))
			if err != nil {
				recvErr = err
				break
			}
			if resp.Status == server.StatusBusy || resp.Status == server.StatusDraining {
				shed = true
			}
		}
		inflight.Add(-int64(m.frames))
		if recvErr == nil {
			if shed {
				wc.shed++
			} else {
				h.Record(time.Since(m.sched))
				wc.kinds[m.kind]++
			}
		}
	}
	wg.Wait()
	if sendErr != nil {
		return sendErr
	}
	return recvErr
}
