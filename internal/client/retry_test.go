package client_test

import (
	"bufio"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"flit/internal/client"
	"flit/internal/resilience"
	"flit/internal/server"
)

// TestConnServerClosesMidPipeline pins the short-read path: the server
// answers part of a pipeline and hangs up. The client must surface a
// typed *PipelineError carrying the outstanding count — never a panic
// or a hang.
func TestConnServerClosesMidPipeline(t *testing.T) {
	cc, sc := net.Pipe()
	// A hand-rolled server that answers exactly 2 requests, then closes.
	go func() {
		br := bufio.NewReader(sc)
		var req server.Request
		for i := 0; i < 2; i++ {
			if err := server.ReadRequest(br, &req); err != nil {
				break
			}
			resp := server.Response{Status: server.StatusOK}
			sc.Write(server.AppendResponse(nil, req.Op, &resp))
		}
		sc.Close()
	}()

	c := client.New(cc)
	defer c.Close()
	c.SetOpTimeout(2 * time.Second)
	for i := 0; i < 5; i++ {
		c.Send(&server.Request{Op: server.OpPut, Key: []byte{byte(i)}, Val: 1})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatalf("recv %d before the hangup: %v", i, err)
		}
	}
	_, err := c.Recv()
	var pe *client.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("recv after hangup = %v, want *PipelineError", err)
	}
	if pe.Pending != 3 {
		t.Fatalf("PipelineError.Pending = %d, want 3", pe.Pending)
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("PipelineError should unwrap to an EOF, got %v", pe.Err)
	}
}

// TestRetryConnReplaysAfterReset injects a reset on the first
// connection's read path: the whole pipeline was delivered and executed,
// but no response survives. The retry layer must redial and replay every
// un-acked op to a definitive answer.
func TestRetryConnReplaysAfterReset(t *testing.T) {
	srv, dial := pipeDialer(t, server.Options{})
	conns := 0
	rc := client.NewRetry(func() (*client.Conn, error) {
		nc, err := dial()
		if err != nil {
			return nil, err
		}
		conns++
		if conns == 1 {
			// 5 put frames cross ~95 bytes; the reset trips after the
			// requests are delivered and before any response is read.
			nc = resilience.WrapConn(nc, resilience.Faults{Seed: 1, ResetAfterBytes: 64})
		}
		return client.New(nc), nil
	}, client.RetryOptions{Seed: 1, OpTimeout: 2 * time.Second})
	defer rc.Close()

	reqs := make([]server.Request, 5)
	resps := make([]server.Response, 5)
	for i := range reqs {
		reqs[i] = server.Request{Op: server.OpPut, Key: []byte{'k', byte('0' + i)}, Val: uint64(i)}
	}
	if err := rc.DoBatch(reqs, resps); err != nil {
		t.Fatalf("DoBatch through a reset: %v", err)
	}
	for i := range resps {
		if resps[i].Status != server.StatusOK {
			t.Fatalf("resp %d status = %d, want StatusOK", i, resps[i].Status)
		}
	}
	if rc.Redials != 1 {
		t.Fatalf("Redials = %d, want 1", rc.Redials)
	}
	if rc.Replays != 5 {
		t.Fatalf("Replays = %d, want 5 (no response arrived before the reset)", rc.Replays)
	}
	if got := len(srv.Store().Snapshot()); got != 5 {
		t.Fatalf("store holds %d keys after replay, want 5", got)
	}
}

// TestRetryConnWaitsOutBusy: an op shed by admission control is retried
// after the server's hint and eventually lands.
func TestRetryConnWaitsOutBusy(t *testing.T) {
	_, dial := pipeDialer(t, server.Options{MaxBatch: 1, RateLimit: 50, RateBurst: 1})
	rc := client.NewRetry(func() (*client.Conn, error) {
		nc, err := dial()
		if err != nil {
			return nil, err
		}
		return client.New(nc), nil
	}, client.RetryOptions{Seed: 1, OpTimeout: 2 * time.Second})
	defer rc.Close()

	if _, err := rc.Put([]byte("a"), 1); err != nil {
		t.Fatalf("first put (within burst): %v", err)
	}
	if _, err := rc.Put([]byte("b"), 2); err != nil {
		t.Fatalf("put through BUSY: %v", err)
	}
	if rc.Busy == 0 {
		t.Fatal("second put was never shed — the rate limit did not engage")
	}
}

// TestRetryConnExhaustsAgainstDeadServer: a server that is gone forever
// must produce a bounded failure, not an infinite retry loop.
func TestRetryConnExhaustsAgainstDeadServer(t *testing.T) {
	srv, dial := pipeDialer(t, server.Options{})
	srv.Close()
	rc := client.NewRetry(func() (*client.Conn, error) {
		nc, err := dial()
		if err != nil {
			return nil, err
		}
		return client.New(nc), nil
	}, client.RetryOptions{MaxAttempts: 3, Seed: 1, OpTimeout: 200 * time.Millisecond})
	defer rc.Close()

	start := time.Now()
	if _, err := rc.Put([]byte("x"), 1); err == nil {
		t.Fatal("put against a closed server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("exhaustion took %v — retries are not bounded", elapsed)
	}
}
