package client

import (
	"errors"
	"fmt"
	"time"

	"flit/internal/resilience"
	"flit/internal/server"
)

// RetryOptions tunes a RetryConn. Zero values pick defaults.
type RetryOptions struct {
	// MaxAttempts caps connection/execution attempts per call (default
	// 4): redials after transport loss and waits after BUSY both consume
	// an attempt.
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the jittered exponential redial and
	// BUSY-wait schedule (defaults 1ms / 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpTimeout is applied to the underlying Conn (SetOpTimeout) so a
	// wedged server fails the attempt instead of hanging it. 0 = none.
	OpTimeout time.Duration
	// Seed makes the jitter reproducible in tests and chaos runs.
	Seed int64
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 250 * time.Millisecond
	}
	return o
}

// RetryConn is a reconnecting wrapper around Conn: transport failures
// redial with capped exponential backoff + jitter and replay ONLY the
// un-acked operations; BUSY rejections wait out the server's hint (or
// the backoff, whichever is longer) and retry. An operation whose
// response arrived is never re-sent.
//
// Replay safety: a lost connection leaves un-acked operations in an
// unknown state — the server may have executed them before the ack was
// lost. Every protocol operation is effect-idempotent (PUT replays to
// the same value, DELETE to the same absence), so replay converges to
// the intended state; only the reported Flag can differ from what a
// fault-free run would have returned (e.g. a replayed PUT reports
// "overwrote" instead of "inserted"). Callers needing exact-once flags
// must not use a RetryConn.
//
// Not safe for concurrent use, like Conn.
type RetryConn struct {
	dial func() (*Conn, error)
	opts RetryOptions
	conn *Conn
	bo   *resilience.Backoff

	// Redials counts reconnects; Busy counts BUSY rejections waited
	// out; Replays counts operations re-sent after transport loss.
	Redials uint64
	Busy    uint64
	Replays uint64
}

// NewRetry builds a RetryConn over a dial function (called lazily, and
// again after every transport failure).
func NewRetry(dial func() (*Conn, error), opts RetryOptions) *RetryConn {
	o := opts.withDefaults()
	return &RetryConn{
		dial: dial,
		opts: o,
		bo:   resilience.NewBackoff(o.BaseBackoff, o.MaxBackoff, o.Seed),
	}
}

// Close closes the current underlying connection, if any.
func (r *RetryConn) Close() error {
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}

// ensure returns a live connection, dialing if needed.
func (r *RetryConn) ensure() (*Conn, error) {
	if r.conn != nil {
		return r.conn, nil
	}
	c, err := r.dial()
	if err != nil {
		return nil, err
	}
	if r.opts.OpTimeout > 0 {
		c.SetOpTimeout(r.opts.OpTimeout)
	}
	r.conn = c
	return c, nil
}

// dropConn discards a connection the transport declared dead.
func (r *RetryConn) dropConn() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
		r.Redials++
	}
}

// sleepAtLeast waits the backoff schedule's next delay, floored at min
// (a server BUSY hint outranks a shorter jittered delay).
func (r *RetryConn) sleepAtLeast(min time.Duration) {
	d := r.bo.Next()
	if d < min {
		d = min
	}
	time.Sleep(d)
}

// DoBatch executes reqs as one pipeline, filling resps[i] for reqs[i].
// Transport failures redial and replay only the operations whose
// responses had not arrived; BUSY/DRAINING rejections are retried after
// a wait. It returns nil only when every request was answered with a
// definitive status; otherwise the first exhausted error (operations
// answered so far keep their responses).
func (r *RetryConn) DoBatch(reqs []server.Request, resps []server.Response) error {
	if len(resps) < len(reqs) {
		return fmt.Errorf("client: DoBatch needs len(resps) >= len(reqs)")
	}
	pending := make([]int, len(reqs))
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt >= r.opts.MaxAttempts {
			if lastErr == nil {
				lastErr = fmt.Errorf("client: retries exhausted")
			}
			return fmt.Errorf("client: %d ops unanswered after %d attempts: %w", len(pending), attempt, lastErr)
		}
		c, err := r.ensure()
		if err != nil {
			lastErr = err
			r.sleepAtLeast(0)
			continue
		}
		if attempt > 0 {
			r.Replays += uint64(len(pending))
		}
		for _, i := range pending {
			c.Send(&reqs[i])
		}
		if err := c.Flush(); err != nil {
			lastErr = err
			r.dropConn()
			r.sleepAtLeast(0)
			continue
		}
		// Receive in send order; on transport loss the unanswered tail
		// stays pending for the next attempt.
		next := pending[:0]
		got := 0
		var busyHint time.Duration
		for _, i := range pending {
			resp, rerr := c.Recv()
			if rerr != nil {
				// This response and everything after it is gone.
				lastErr = rerr
				next = append(next, pending[got:]...)
				break
			}
			got++
			switch resp.Status {
			case server.StatusBusy, server.StatusDraining:
				lastErr = statusErr(resp.Status, resp.RetryAfterMs)
				if h := time.Duration(resp.RetryAfterMs) * time.Millisecond; h > busyHint {
					busyHint = h
				}
				if resp.Status == server.StatusBusy {
					r.Busy++
				}
				next = append(next, i)
			default:
				resps[i] = *resp
				resps[i].Body = append([]byte(nil), resp.Body...)
			}
		}
		if got < len(pending) {
			r.dropConn()
		}
		pending = append(pending[:0:0], next...)
		if len(pending) > 0 {
			if errors.Is(lastErr, ErrDraining) {
				// The server is going away; the current conn will be
				// closed server-side. Redial after the wait.
				r.dropConn()
			}
			r.sleepAtLeast(busyHint)
			continue
		}
		r.bo.Reset()
	}
	return nil
}

// do round-trips one request through DoBatch.
func (r *RetryConn) do(op byte, key []byte, val uint64) (server.Response, error) {
	reqs := []server.Request{{Op: op, Key: key, Val: val}}
	resps := make([]server.Response, 1)
	err := r.DoBatch(reqs, resps)
	return resps[0], err
}

// Get fetches key's value, retrying through failures.
func (r *RetryConn) Get(key []byte) (uint64, bool, error) {
	resp, err := r.do(server.OpGet, key, 0)
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == server.StatusOK, nil
}

// Put stores key→val. The inserted flag may misreport after a replay
// (see the type comment).
func (r *RetryConn) Put(key []byte, val uint64) (bool, error) {
	resp, err := r.do(server.OpPut, key, val)
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Delete removes key. The existed flag may misreport after a replay.
func (r *RetryConn) Delete(key []byte) (bool, error) {
	resp, err := r.do(server.OpDelete, key, 0)
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Contains reports whether key is present.
func (r *RetryConn) Contains(key []byte) (bool, error) {
	resp, err := r.do(server.OpContains, key, 0)
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Ping round-trips an empty frame, redialing as needed.
func (r *RetryConn) Ping() error {
	_, err := r.do(server.OpPing, nil, 0)
	return err
}
