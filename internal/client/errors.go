package client

import (
	"errors"
	"fmt"
	"time"

	"flit/internal/server"
)

// ErrDraining reports that the server rejected the operation because it
// is shutting down. The operation was not executed; retry against
// another server (or the same one after it restarts).
var ErrDraining = errors.New("client: server draining")

// BusyError reports that the server shed the operation under admission
// control. The operation was not executed; RetryAfter carries the
// server's backoff hint.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("client: server busy, retry after %v", e.RetryAfter)
}

// PipelineError reports a connection failure with responses still
// outstanding: the transport died (or returned garbage) before every
// pipelined request was answered. Pending counts the requests whose
// responses will never arrive (-1 when the caller tracks its own
// pipeline); whether those operations executed server-side is unknown —
// only idempotent operations should be replayed.
type PipelineError struct {
	Pending int
	Err     error
}

func (e *PipelineError) Error() string {
	if e.Pending < 0 {
		return fmt.Sprintf("client: pipeline broken: %v", e.Err)
	}
	return fmt.Sprintf("client: pipeline broken with %d responses outstanding: %v", e.Pending, e.Err)
}

func (e *PipelineError) Unwrap() error { return e.Err }

// statusErr maps a rejection status to its typed error, nil for
// anything a convenience caller should treat as success.
func statusErr(status byte, retryAfterMs uint32) error {
	switch status {
	case server.StatusBusy:
		return &BusyError{RetryAfter: time.Duration(retryAfterMs) * time.Millisecond}
	case server.StatusDraining:
		return ErrDraining
	}
	return nil
}
