package client_test

import (
	"net"
	"testing"
	"time"

	"flit/internal/client"
	"flit/internal/core"
	"flit/internal/server"
	"flit/internal/store"
	"flit/internal/workload"
)

// pipeDialer boots an in-process server and returns a dialer minting
// net.Pipe connections served by it.
func pipeDialer(t *testing.T) (*server.Server, func() (net.Conn, error)) {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 12, Policy: core.PolicyHT,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, server.Options{})
	t.Cleanup(func() { srv.Close() })
	return srv, func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
}

// TestLoadAndRunClosedLoop: the wire load phase populates the store,
// and a closed-loop run at depth 16 forms multi-op server batches.
func TestLoadAndRunClosedLoop(t *testing.T) {
	srv, dial := pipeDialer(t)
	const records = 512
	if err := client.Load(dial, records, 2, 16); err != nil {
		t.Fatal(err)
	}
	snap := srv.Store().Snapshot()
	if len(snap) != records {
		t.Fatalf("load phase left %d keys, want %d", len(snap), records)
	}

	res, err := client.Run(dial, client.Spec{
		Mix: "a", Dist: workload.DistZipfian, Records: records,
		Conns: 2, Depth: 16, Duration: 150 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ServerOps == 0 {
		t.Fatalf("no ops recorded: %+v", res)
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatalf("mix a produced reads=%d updates=%d", res.Reads, res.Updates)
	}
	if res.OpsPerBatch <= 1.5 {
		t.Fatalf("ops/batch = %.2f at depth 16: pipeline batching is not happening", res.OpsPerBatch)
	}
	if res.PWBsPerOp <= 0 {
		t.Fatalf("pwbs/op = %v for an update-heavy mix", res.PWBsPerOp)
	}
	if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
		t.Fatalf("latency ordering broken: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
}

// TestRunOpenLoop: the fixed-rate arrival mode paces operations and
// measures from the schedule.
func TestRunOpenLoop(t *testing.T) {
	_, dial := pipeDialer(t)
	if err := client.Load(dial, 256, 1, 16); err != nil {
		t.Fatal(err)
	}
	res, err := client.Run(dial, client.Spec{
		Mix: "b", Dist: workload.DistUniform, Records: 256,
		Conns: 2, Rate: 2000, Duration: 200 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("open loop recorded no ops")
	}
	// 2000/s over ~200ms ≈ 400 arrivals; allow generous slack for
	// scheduler jitter, but the pacing must bite in both directions.
	if res.Ops > 500 {
		t.Fatalf("open loop ran %d ops at rate 2000/s over 200ms: pacing is not limiting", res.Ops)
	}
	if res.Ops < 100 {
		t.Fatalf("open loop ran only %d ops at rate 2000/s over 200ms", res.Ops)
	}
}

// TestRunScanAndRMWFrames: mixes expanding ops to multiple frames (E's
// scan bursts, F's GET+PUT) stay in protocol sync end to end.
func TestRunScanAndRMWFrames(t *testing.T) {
	for _, mix := range []string{"e", "f"} {
		_, dial := pipeDialer(t)
		if err := client.Load(dial, 256, 1, 16); err != nil {
			t.Fatal(err)
		}
		res, err := client.Run(dial, client.Spec{
			Mix: mix, Dist: workload.DistUniform, Records: 256,
			Conns: 1, Depth: 8, Duration: 100 * time.Millisecond, Seed: 5,
		})
		if err != nil {
			t.Fatalf("mix %s: %v", mix, err)
		}
		if res.Ops == 0 {
			t.Fatalf("mix %s recorded no ops", mix)
		}
		if mix == "e" && res.Scans == 0 {
			t.Fatal("mix e produced no scans")
		}
		if mix == "f" && res.RMWs == 0 {
			t.Fatal("mix f produced no rmws")
		}
	}
}
