package client_test

import (
	"net"
	"testing"
	"time"

	"flit/internal/client"
	"flit/internal/core"
	"flit/internal/resilience"
	"flit/internal/server"
	"flit/internal/store"
	"flit/internal/workload"
)

// pipeDialer boots an in-process server and returns a dialer minting
// net.Pipe connections served by it.
func pipeDialer(t *testing.T, opts server.Options) (*server.Server, func() (net.Conn, error)) {
	t.Helper()
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 12, Policy: core.PolicyHT,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, opts)
	t.Cleanup(func() { srv.Close() })
	return srv, func() (net.Conn, error) {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
}

// TestLoadAndRunClosedLoop: the wire load phase populates the store,
// and a closed-loop run at depth 16 forms multi-op server batches.
func TestLoadAndRunClosedLoop(t *testing.T) {
	srv, dial := pipeDialer(t, server.Options{})
	const records = 512
	if err := client.Load(dial, records, 2, 16); err != nil {
		t.Fatal(err)
	}
	snap := srv.Store().Snapshot()
	if len(snap) != records {
		t.Fatalf("load phase left %d keys, want %d", len(snap), records)
	}

	res, err := client.Run(dial, client.Spec{
		Mix: "a", Dist: workload.DistZipfian, Records: records,
		Conns: 2, Depth: 16, Duration: 150 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ServerOps == 0 {
		t.Fatalf("no ops recorded: %+v", res)
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatalf("mix a produced reads=%d updates=%d", res.Reads, res.Updates)
	}
	if res.OpsPerBatch <= 1.5 {
		t.Fatalf("ops/batch = %.2f at depth 16: pipeline batching is not happening", res.OpsPerBatch)
	}
	if res.PWBsPerOp <= 0 {
		t.Fatalf("pwbs/op = %v for an update-heavy mix", res.PWBsPerOp)
	}
	if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P50 {
		t.Fatalf("latency ordering broken: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
}

// TestRunOpenLoop: the fixed-rate arrival mode paces operations and
// measures from the schedule.
func TestRunOpenLoop(t *testing.T) {
	_, dial := pipeDialer(t, server.Options{})
	if err := client.Load(dial, 256, 1, 16); err != nil {
		t.Fatal(err)
	}
	res, err := client.Run(dial, client.Spec{
		Mix: "b", Dist: workload.DistUniform, Records: 256,
		Conns: 2, Rate: 2000, Duration: 200 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("open loop recorded no ops")
	}
	// 2000/s over ~200ms ≈ 400 arrivals; allow generous slack for
	// scheduler jitter, but the pacing must bite in both directions.
	if res.Ops > 500 {
		t.Fatalf("open loop ran %d ops at rate 2000/s over 200ms: pacing is not limiting", res.Ops)
	}
	if res.Ops < 100 {
		t.Fatalf("open loop ran only %d ops at rate 2000/s over 200ms", res.Ops)
	}
}

// TestRunProgressAndServerQuantiles: against a metrics-enabled server,
// the monitor goroutine delivers live Progress snapshots and the final
// Result carries the server-side service-time quantiles from STATS v2.
func TestRunProgressAndServerQuantiles(t *testing.T) {
	_, dial := pipeDialer(t, server.Options{Metrics: true})
	if err := client.Load(dial, 256, 1, 16); err != nil {
		t.Fatal(err)
	}
	var snaps []client.Progress
	res, err := client.Run(dial, client.Spec{
		Mix: "a", Dist: workload.DistUniform, Records: 256,
		Conns: 2, Depth: 8, Duration: 150 * time.Millisecond, Seed: 7,
		Progress:      func(p client.Progress) { snaps = append(snaps, p) },
		ProgressEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("monitor delivered %d progress snapshots over 150ms at 20ms", len(snaps))
	}
	var sawRate bool
	for i, p := range snaps {
		if i > 0 && p.Ops < snaps[i-1].Ops {
			t.Fatalf("cumulative ops went backwards: %+v after %+v", p, snaps[i-1])
		}
		if i > 0 && p.Elapsed <= snaps[i-1].Elapsed {
			t.Fatalf("elapsed not increasing at snapshot %d", i)
		}
		if p.OpsPerSec > 0 {
			sawRate = true
			if p.P99 < p.P50 {
				t.Fatalf("interval quantiles out of order: %+v", p)
			}
		}
	}
	if !sawRate {
		t.Fatal("no progress snapshot observed a positive op rate")
	}
	if last := snaps[len(snaps)-1]; last.Ops > res.Ops {
		t.Fatalf("last snapshot saw %d ops, final result %d", last.Ops, res.Ops)
	}
	if res.ServerP50 <= 0 || res.ServerP99 < res.ServerP50 || res.ServerOpMax < res.ServerP99 {
		t.Fatalf("server-side quantiles missing or out of order: %+v", res)
	}
	if res.ServerCommitP99 <= 0 {
		t.Fatalf("server commit p99 missing: %+v", res)
	}
	if res.ServerP99 > res.P99 {
		t.Fatalf("server service time p99 %v exceeds client round-trip p99 %v", res.ServerP99, res.P99)
	}
}

// TestRunScanAndRMWFrames: mixes expanding ops to multiple frames (E's
// scan bursts, F's GET+PUT) stay in protocol sync end to end.
func TestRunScanAndRMWFrames(t *testing.T) {
	for _, mix := range []string{"e", "f"} {
		_, dial := pipeDialer(t, server.Options{})
		if err := client.Load(dial, 256, 1, 16); err != nil {
			t.Fatal(err)
		}
		res, err := client.Run(dial, client.Spec{
			Mix: mix, Dist: workload.DistUniform, Records: 256,
			Conns: 1, Depth: 8, Duration: 100 * time.Millisecond, Seed: 5,
		})
		if err != nil {
			t.Fatalf("mix %s: %v", mix, err)
		}
		if res.Ops == 0 {
			t.Fatalf("mix %s recorded no ops", mix)
		}
		if mix == "e" && res.Scans == 0 {
			t.Fatal("mix e produced no scans")
		}
		if mix == "f" && res.RMWs == 0 {
			t.Fatal("mix f produced no rmws")
		}
	}
}

// TestRunClosedLoopShedsUnderRateLimit: against an admission-controlled
// server the load generator keeps running, counts shed operations
// separately from goodput, and its count agrees with the server's.
func TestRunClosedLoopShedsUnderRateLimit(t *testing.T) {
	srv, dial := pipeDialer(t, server.Options{MaxBatch: 8, RateLimit: 500, RateBurst: 8})
	if err := client.Load(dial, 256, 1, 4); err == nil {
		// The load phase itself may be shed under this tight limit; both
		// outcomes are fine — the run below is the subject.
		_ = err
	}
	res, err := client.Run(dial, client.Spec{
		Mix: "a", Dist: workload.DistUniform, Records: 256,
		Conns: 2, Depth: 8, Duration: 200 * time.Millisecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("no shed ops at 500 ops/s with 2 conns depth 8: %+v", res)
	}
	if res.ShedRate <= 0 || res.ShedRate >= 1 {
		t.Fatalf("ShedRate = %v, want in (0,1)", res.ShedRate)
	}
	if res.ServerShed == 0 {
		t.Fatal("server shed counter did not move")
	}
	_ = srv
}

// TestRunOpenLoopBackpressure: an open-loop rate far above what the
// response path can drain must not queue unboundedly — arrivals over
// the inflight cap are dropped and counted. The response path is slowed
// with injected read delays so inflight actually builds up; the
// transport is TCP, not net.Pipe, because a synchronous pipe would
// cascade the stall back into the sender's Flush (the sender would
// block instead of dropping).
func TestRunOpenLoopBackpressure(t *testing.T) {
	st, err := store.New(store.Options{
		Shards: 4, ExpectedKeys: 1 << 12, Policy: core.PolicyHT,
		HTBytes: 1 << 14, VirtualClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp unavailable: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	dial := func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) }
	if err := client.Load(dial, 128, 1, 4); err != nil {
		t.Fatal(err)
	}
	slowDial := func() (net.Conn, error) {
		nc, err := dial()
		if err != nil {
			return nil, err
		}
		return resilience.WrapConn(nc, resilience.Faults{
			Seed: 13, DelayEvery: 1, ReadDelay: 5 * time.Millisecond,
		}), nil
	}
	res, err := client.Run(slowDial, client.Spec{
		Mix: "b", Dist: workload.DistUniform, Records: 128,
		Conns: 1, Rate: 20000, MaxInflight: 16,
		Duration: 200 * time.Millisecond, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("no dropped arrivals at 20k/s against a 5ms-per-read response path: %+v", res)
	}
	if res.Ops == 0 {
		t.Fatalf("backpressure starved the run entirely: %+v", res)
	}
}
