// Package client is the FliT-Store network client: a pipelining
// connection over the server's length-prefixed binary protocol, plus a
// load generator (loadgen.go) that drives the YCSB workload mixes
// through pipelined connections — the feeder the server's group-commit
// batching is designed for.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"flit/internal/server"
)

// Conn is a client connection. Not safe for concurrent use: the
// pipelining discipline (Send*/Flush/Recv) is the caller's, one
// goroutine at a time — the load generator runs one Conn per worker.
type Conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	// opTimeout bounds each Flush (write side) and each Recv (read
	// side) when non-zero; see SetOpTimeout.
	opTimeout time.Duration

	// inflight queues the opcodes of sent-but-unanswered requests;
	// responses decode against them in FIFO order.
	inflight []byte
	head     int
	out      []byte
	resp     server.Response
}

// New wraps an established transport (TCP, unix socket, net.Pipe).
func New(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Dial connects to a flitstored server.
func Dial(network, addr string) (*Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return New(c), nil
}

// Close closes the transport.
func (c *Conn) Close() error { return c.c.Close() }

// SetOpTimeout bounds every subsequent Flush and Recv/RecvFor with a
// per-call deadline: a server that neither accepts writes nor produces
// a response within d fails the call with a timeout instead of hanging
// the caller forever. Zero disables (the default).
func (c *Conn) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// Pending reports the sent-but-unanswered request count.
func (c *Conn) Pending() int { return len(c.inflight) - c.head }

// Send buffers one request frame without flushing; pipeline as many as
// the window wants, then Flush once so the server sees — and
// group-commits — the whole window.
func (c *Conn) Send(req *server.Request) {
	c.out = server.AppendRequest(c.out[:0], req)
	c.bw.Write(c.out)
	c.inflight = append(c.inflight, req.Op)
}

// Flush pushes every buffered request to the transport.
func (c *Conn) Flush() error {
	if c.opTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.opTimeout))
	}
	return c.bw.Flush()
}

// Recv decodes the next pipelined response, in send order. The returned
// Response aliases internal buffers until the next Recv.
//
// A transport or decode failure comes back as a *PipelineError carrying
// the outstanding-response count — never a short-read panic or a hang
// (with an op timeout set): the pipeline's remaining responses are gone
// and the connection is unusable. BUSY and DRAINING responses are NOT
// errors at this layer; pipelining callers inspect resp.Status (the
// convenience methods map them to typed errors).
func (c *Conn) Recv() (*server.Response, error) {
	if c.head == len(c.inflight) {
		return nil, fmt.Errorf("client: Recv with no request in flight")
	}
	op := c.inflight[c.head]
	if c.opTimeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.opTimeout))
	}
	if err := server.ReadResponse(c.br, op, &c.resp); err != nil {
		return nil, &PipelineError{Pending: c.Pending(), Err: err}
	}
	c.head++
	if c.head == len(c.inflight) {
		c.inflight, c.head = c.inflight[:0], 0
	}
	if c.resp.Status == server.StatusErr {
		return nil, fmt.Errorf("client: server error: %s", c.resp.Body)
	}
	return &c.resp, nil
}

// SendUntracked buffers a request without enrolling it in the pipeline
// FIFO — for callers that track response opcodes themselves. The
// open-loop load generator splits one Conn between a sender and a
// receiver goroutine this way: the write half (SendUntracked, Flush)
// and the read half (RecvFor) touch disjoint state, so the split is
// race-free as long as each half stays on one goroutine.
func (c *Conn) SendUntracked(req *server.Request) {
	c.out = server.AppendRequest(c.out[:0], req)
	c.bw.Write(c.out)
}

// RecvFor decodes the next response frame for a request sent with
// opcode op (untracked pipelining). The returned Response aliases
// internal buffers until the next RecvFor/Recv. Transport failures are
// wrapped like Recv's, with Pending = -1 (the caller owns the FIFO).
func (c *Conn) RecvFor(op byte) (*server.Response, error) {
	if c.opTimeout > 0 {
		c.c.SetReadDeadline(time.Now().Add(c.opTimeout))
	}
	if err := server.ReadResponse(c.br, op, &c.resp); err != nil {
		return nil, &PipelineError{Pending: -1, Err: err}
	}
	if c.resp.Status == server.StatusErr {
		return nil, fmt.Errorf("client: server error: %s", c.resp.Body)
	}
	return &c.resp, nil
}

// roundTrip sends one request and waits for its response (pipeline
// depth 1 — the synchronous convenience API). Admission rejections come
// back typed: *BusyError with the server's hint, ErrDraining on
// shutdown.
func (c *Conn) roundTrip(req *server.Request) (*server.Response, error) {
	c.Send(req)
	if err := c.Flush(); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if serr := statusErr(resp.Status, resp.RetryAfterMs); serr != nil {
		return nil, serr
	}
	return resp, nil
}

// Get fetches key's value.
func (c *Conn) Get(key []byte) (uint64, bool, error) {
	resp, err := c.roundTrip(&server.Request{Op: server.OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == server.StatusOK, nil
}

// Put stores key→val, reporting whether the key was newly inserted.
func (c *Conn) Put(key []byte, val uint64) (bool, error) {
	resp, err := c.roundTrip(&server.Request{Op: server.OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Delete removes key, reporting whether it was present.
func (c *Conn) Delete(key []byte) (bool, error) {
	resp, err := c.roundTrip(&server.Request{Op: server.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Contains reports whether key is present.
func (c *Conn) Contains(key []byte) (bool, error) {
	resp, err := c.roundTrip(&server.Request{Op: server.OpContains, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(&server.Request{Op: server.OpPing})
	return err
}

// Stats fetches the server's cumulative counters.
func (c *Conn) Stats() (server.Stats, error) {
	var st server.Stats
	resp, err := c.roundTrip(&server.Request{Op: server.OpStats})
	if err != nil {
		return st, err
	}
	err = json.Unmarshal(resp.Body, &st)
	return st, err
}
