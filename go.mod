module flit

go 1.24
