// Package flit is a Go reproduction of "FliT: A Library for Simple and
// Efficient Persistent Algorithms" (Wei, Ben-David, Friedman, Blelloch,
// Petrank — PPoPP 2022).
//
// FliT ("Flush if Tagged") instruments loads and stores so that any
// linearizable data structure becomes durably linearizable on non-volatile
// memory, while skipping almost all redundant flush instructions. The key
// idea is a flit-counter per memory location: a persisted store increments
// the counter, writes, flushes, fences, then decrements; a persisted load
// flushes the location only if its counter is non-zero.
//
// Because Go cannot issue clwb/sfence and its GC forbids per-word tracking
// of native pointers, this reproduction runs on a simulated persistent
// memory (internal/pmem): a word-addressable volatile layer with a
// persistent shadow, explicit PWB/PFence instructions, crash-image
// generation and flush-cost modeling. Data structures allocate nodes from
// a persistent heap (internal/pheap) and reference them by offset, exactly
// as PMDK-based C++ code does.
//
// The packages under internal implement, per the paper:
//
//   - internal/pmem:   the NVRAM substrate (volatile + persistent layers,
//     PWB/PFence, crash modes, instruction-level crash injection, stats)
//   - internal/pheap:  persistent heap with offset pointers and root slots
//   - internal/core:   the P-V Interface policies — FliT (Algorithm 4) with
//     pluggable flit-counter placement, link-and-persist, plain, no-persist
//   - internal/dstruct: Harris linked list, hash table, skiplist and
//     Natarajan–Mittal BST, each supporting automatic / NVtraverse / manual
//     durability methods and post-crash recovery; plus the Friedman-style
//     durable queue (§4's volatile head/tail example) and a lock-based map
//     demonstrating §7's private-instruction optimization
//   - internal/audit:  a runtime P-V Interface conformance checker that
//     localizes Definition-1 violations to the offending instruction
//   - internal/hist:   a durable-linearizability checker for set histories
//   - internal/crashtest: randomized crash-recovery validation for single
//     structures and whole stores
//   - internal/harness: the workload driver regenerating every figure of
//     the paper's evaluation section
//
// Above the paper's scope, the service layer exercises FliT at
// production shape:
//
//   - internal/store:  FliT-Store, a sharded durable key-value store —
//     string keys hashed into the instrumented keyspace, one hashtable
//     shard per persistent root, a self-describing superblock, and
//     shard-parallel post-crash recovery
//   - internal/workload: a YCSB-style workload subsystem (mixes A-F,
//     uniform/zipfian/latest distributions, latency histograms,
//     closed- and open-loop runners) driven by cmd/flitstore, which
//     emits JSON performance reports
//   - internal/server, internal/client: the network front-end — a
//     pipelined binary protocol whose per-connection batches execute
//     with persistence deferred and commit under one shared fence
//     before any response (group-commit durability batching), served
//     by cmd/flitstored and driven by the cmd/flitload generator
//
// See DESIGN.md for the package inventory and EXPERIMENTS.md for how to
// regenerate the paper's figures and the store's performance reports.
// Start with examples/quickstart.
package flit
