// Command flitstore runs FliT-Store, the sharded durable key-value
// service, through YCSB-style load → run → injected-crash → recovery
// cycles and emits a machine-readable JSON report (throughput, p50/p95/p99
// operation latency, flush counts, per-shard recovery times, and the
// durable-linearizability verdict of the internal/hist checker).
//
// Usage:
//
//	flitstore -policy=flit-ht -shards=8 -workload=a -dist=zipfian
//	flitstore -workload=b -dist=uniform -cycles=3 -out=report.json
//	flitstore -policy=plain -mode=nvtraverse -records=50000 -duration=1s
//
// The JSON report goes to stdout (or -out); a human-readable summary
// table is printed to stderr unless -quiet is set. Exit status 1 means
// the checker found a durable-linearizability violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"flit/internal/bench"
	"flit/internal/bench/stats"
	"flit/internal/core"
	"flit/internal/crashtest"
	"flit/internal/dstruct"
	"flit/internal/harness"
	"flit/internal/pmem"
	"flit/internal/store"
	"flit/internal/workload"
)

// report is the top-level JSON document. The service-specific sections
// (load, cycles, crash/recovery) carry the full detail; Bench restates
// the per-cycle performance through the repo-wide internal/bench schema
// so flitstore output joins the BENCH_*.json perf trajectory and can be
// diffed with `flitbench compare`.
type report struct {
	Config configJSON    `json:"config"`
	Load   loadJSON      `json:"load"`
	Cycles []cycleJSON   `json:"cycles"`
	Check  string        `json:"check"` // "ok" | "violation" | "skipped"
	Bench  *bench.Report `json:"bench"`
}

type configJSON struct {
	Shards    int     `json:"shards"`
	Buckets   int     `json:"buckets_per_shard"`
	Policy    string  `json:"policy"`
	Mode      string  `json:"mode"`
	Workload  string  `json:"workload"`
	Dist      string  `json:"dist"`
	ZipfS     float64 `json:"zipf_s"`
	Threads   int     `json:"threads"`
	Records   uint64  `json:"records"`
	Duration  string  `json:"duration"`
	Cycles    int     `json:"cycles"`
	CrashMode string  `json:"crash_mode"`
	Seed      int64   `json:"seed"`
}

type loadJSON struct {
	Records   uint64  `json:"records"`
	ElapsedNs int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type cycleJSON struct {
	Cycle    int             `json:"cycle"`
	Run      workload.Result `json:"run"`
	Crash    *crashJSON      `json:"crash,omitempty"`
	Recovery *recoveryJSON   `json:"recovery,omitempty"`
}

type crashJSON struct {
	RecordedOps int    `json:"recorded_ops"`
	Workers     int    `json:"workers"`
	Crashed     int    `json:"crashed_workers"`
	CrashMode   string `json:"crash_mode"`
	Check       string `json:"check"`
}

type recoveryJSON struct {
	Shards      int     `json:"shards"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	ShardNs     []int64 `json:"shard_ns"`
	SerialNs    int64   `json:"serial_ns"` // sum of per-shard times
	Parallelism float64 `json:"parallel_speedup"`
	Keys        int     `json:"keys_recovered"`
}

func modeByName(name string) (dstruct.Mode, error) {
	if m, ok := dstruct.ModeByName(name); ok {
		return m, nil
	}
	return 0, fmt.Errorf("unknown mode %q (known: %v)", name, dstruct.Modes)
}

func crashModeByName(name string) (pmem.CrashMode, error) {
	for _, m := range []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown crash mode %q (drop-unfenced|random-subset|persist-all)", name)
}

func main() {
	shards := flag.Int("shards", 8, "shard count (each on its own persistent root)")
	buckets := flag.Int("buckets", 0, "buckets per shard (0 = derive from -records)")
	policy := flag.String("policy", core.PolicyHT, "persistence policy (flit-ht|flit-adjacent|flit-packed|flit-perline|plain|izraelevitz|link-and-persist|no-persist)")
	modeName := flag.String("mode", dstruct.Automatic.String(), "durability mode (automatic|nvtraverse|manual)")
	wl := flag.String("workload", "a", "YCSB mix (a|b|c|d|e|f|g)")
	dist := flag.String("dist", workload.DistZipfian, "key distribution (uniform|zipfian|latest)")
	zipfS := flag.Float64("zipf", workload.DefaultZipfS, "zipfian skew (>1)")
	threads := flag.Int("threads", defaultThreads(), "worker threads")
	duration := flag.Duration("duration", 400*time.Millisecond, "measured run duration per cycle")
	records := flag.Uint64("records", 20_000, "records loaded before the first cycle")
	cycles := flag.Int("cycles", 1, "load → run → crash → recover cycles")
	crashMode := flag.String("crashmode", pmem.RandomSubset.String(), "crash image semantics (drop-unfenced|random-subset|persist-all)")
	crashOps := flag.Int("crash-ops", 240, "recorded ops per worker in the crash phase")
	seed := flag.Int64("seed", 1, "base seed")
	vclock := flag.Bool("vclock", false, "virtual-clock cost accounting (no spin loops; throughput not comparable with spin-mode runs)")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	benchOut := flag.String("bench-json", "", "also write the embedded BenchReport standalone (flitbench compare input)")
	quiet := flag.Bool("quiet", false, "suppress the stderr summary table")
	flag.Parse()

	mode, err := modeByName(*modeName)
	if err != nil {
		fatal(err)
	}
	cm, err := crashModeByName(*crashMode)
	if err != nil {
		fatal(err)
	}

	// Size for the loaded records plus growth from D/E inserts and the
	// crash phases across all cycles.
	expected := int(*records)*2 + 80_000*(*cycles)
	st, err := store.New(store.Options{
		Shards:       *shards,
		Buckets:      *buckets,
		ExpectedKeys: expected,
		Policy:       *policy,
		Mode:         mode,
		VirtualClock: *vclock,
	})
	if err != nil {
		fatal(err)
	}

	rep := report{
		Config: configJSON{
			Shards: st.Opts().Shards, Buckets: st.Opts().Buckets,
			Policy: *policy, Mode: mode.String(),
			Workload: *wl, Dist: *dist, ZipfS: *zipfS,
			Threads: *threads, Records: *records, Duration: duration.String(),
			Cycles: *cycles, CrashMode: cm.String(), Seed: *seed,
		},
		Check: "ok",
	}

	loadElapsed, loadOps := workload.Load(st, *records, *threads)
	rep.Load = loadJSON{Records: *records, ElapsedNs: loadElapsed.Nanoseconds(), OpsPerSec: loadOps}

	// The no-persist baseline cannot pass a crash check by design; run the
	// workload phases but skip injection so the report stays honest.
	skipCrash := *policy == core.PolicyNoPersist

	for c := 0; c < *cycles; c++ {
		res, err := workload.Run(st, workload.Spec{
			Mix: *wl, Dist: *dist, ZipfS: *zipfS,
			Threads: *threads, Duration: *duration,
			Records: *records, Seed: *seed + int64(c)*101,
		})
		if err != nil {
			fatal(err)
		}
		cy := cycleJSON{Cycle: c, Run: res}

		if skipCrash {
			rep.Check = "skipped"
		} else {
			opts := crashtest.DefaultStoreOptions(*seed*1000+int64(c), cm)
			opts.Workers = *threads
			opts.OpsPerWorker = *crashOps
			opts.KeyRange = *records
			opts.KeyOf = workload.Key
			// Scale the countdown window to the op budget (ops cost ~5
			// instrumented instructions each on short chains) so the crash
			// lands mid-run rather than after the workers drain their
			// budgets.
			opts.MinCrash, opts.MaxCrash = 50, int64(*crashOps)*4
			if opts.MaxCrash < opts.MinCrash {
				opts.MaxCrash = opts.MinCrash
			}
			verdict, err := crashtest.RunStore(st, opts)
			if err != nil {
				fatal(err)
			}
			check := "ok"
			if verdict.Violation != nil {
				check = "violation"
				rep.Check = "violation"
				fmt.Fprintf(os.Stderr, "flitstore: cycle %d: %v\n", c, verdict.Violation)
			}
			cy.Crash = &crashJSON{
				RecordedOps: verdict.RecordedOps, Workers: opts.Workers,
				Crashed: verdict.Crashed, CrashMode: cm.String(), Check: check,
			}
			shardNs := make([]int64, len(verdict.Recovery.Shards))
			var serial int64
			for i, d := range verdict.Recovery.Shards {
				shardNs[i] = d.Nanoseconds()
				serial += d.Nanoseconds()
			}
			rec := &recoveryJSON{
				Shards:    len(shardNs),
				ElapsedNs: verdict.Recovery.Elapsed.Nanoseconds(),
				ShardNs:   shardNs,
				SerialNs:  serial,
				Keys:      verdict.Recovery.Keys,
			}
			if rec.ElapsedNs > 0 {
				rec.Parallelism = float64(serial) / float64(rec.ElapsedNs)
			}
			cy.Recovery = rec
			st = verdict.Store // next cycle runs on the recovered store
		}
		rep.Cycles = append(rep.Cycles, cy)
	}

	// A cell-less bench report (possible with -cycles 0) is not
	// schema-valid; emit the section only when cycles actually ran.
	if br := benchReport(rep); len(br.Cells) > 0 {
		rep.Bench = br
		if *benchOut != "" {
			if err := br.WriteFile(*benchOut); err != nil {
				fatal(err)
			}
		}
	} else if *benchOut != "" {
		fmt.Fprintln(os.Stderr, "flitstore: no cycles ran; skipping -bench-json")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(string(enc))
	}
	if !*quiet {
		printSummary(rep)
	}
	if rep.Check == "violation" {
		os.Exit(1)
	}
}

// benchReport restates the per-cycle run results as internal/bench
// schema cells: one throughput + flush-rate pair per cycle, plus an
// "all" aggregate summarizing across cycles (the cell a CI gate would
// diff). Latency tails ride on the throughput cells.
func benchReport(rep report) *bench.Report {
	cfg := rep.Config
	br := bench.NewReport("flitstore", map[string]string{
		"workload": cfg.Workload, "dist": cfg.Dist, "policy": cfg.Policy,
		"mode": cfg.Mode, "shards": fmt.Sprint(cfg.Shards),
		"threads": fmt.Sprint(cfg.Threads), "records": fmt.Sprint(cfg.Records),
		"duration": cfg.Duration, "cycles": fmt.Sprint(cfg.Cycles),
		"seed": fmt.Sprint(cfg.Seed),
	})
	base := bench.SlugID("store", cfg.Workload, cfg.Dist, cfg.Policy,
		fmt.Sprintf("s%d", cfg.Shards), fmt.Sprintf("r%d", cfg.Records))
	var tputs, pwbRates []float64
	for _, cy := range rep.Cycles {
		r := cy.Run
		id := fmt.Sprintf("%s/cycle%d", base, cy.Cycle)
		br.Add(bench.Cell{
			ID: id + "/throughput", Unit: "ops/s", Value: stats.Of(r.OpsPerSec),
			Ops: r.Ops, PWBs: r.PWBs, PFences: r.PFences,
			P50Ns: r.P50.Nanoseconds(), P95Ns: r.P95.Nanoseconds(), P99Ns: r.P99.Nanoseconds(),
			NsPerOp: r.NsPerOp, AllocsPerOp: r.AllocsPerOp,
		})
		br.Add(bench.Cell{
			ID: id + "/pwbs_per_op", Unit: "pwbs/op", Value: stats.Of(r.PWBsPerOp),
			LowerIsBetter: true,
		})
		tputs = append(tputs, r.OpsPerSec)
		pwbRates = append(pwbRates, r.PWBsPerOp)
	}
	if len(tputs) > 0 {
		br.Add(bench.Cell{ID: base + "/all/throughput", Unit: "ops/s", Value: stats.Summarize(tputs)})
		br.Add(bench.Cell{ID: base + "/all/pwbs_per_op", Unit: "pwbs/op",
			Value: stats.Summarize(pwbRates), LowerIsBetter: true})
	}
	return br
}

// printSummary renders the per-cycle numbers with the harness's table
// formatter, one row per cycle.
func printSummary(rep report) {
	t := &harness.Table{
		Title: fmt.Sprintf("flitstore %s/%s/%s shards=%d threads=%d records=%d",
			rep.Config.Workload, rep.Config.Dist, rep.Config.Policy,
			rep.Config.Shards, rep.Config.Threads, rep.Config.Records),
		ColHead: "cycle",
		Cols:    []string{"kops/s", "p50 µs", "p95 µs", "p99 µs", "pwbs/op", "recover ms", "par x"},
		Unit:    "per-cycle",
	}
	for _, c := range rep.Cycles {
		recMs, par := 0.0, 0.0
		if c.Recovery != nil {
			recMs = float64(c.Recovery.ElapsedNs) / 1e6
			par = c.Recovery.Parallelism
		}
		check := "skipped"
		if c.Crash != nil {
			check = c.Crash.Check
		}
		t.AddRow(fmt.Sprintf("#%d (%s)", c.Cycle, check),
			c.Run.OpsPerSec/1e3,
			float64(c.Run.P50.Nanoseconds())/1e3,
			float64(c.Run.P95.Nanoseconds())/1e3,
			float64(c.Run.P99.Nanoseconds())/1e3,
			c.Run.PWBsPerOp,
			recMs, par)
	}
	fmt.Fprintln(os.Stderr, t.Format())
}

func defaultThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flitstore:", err)
	os.Exit(1)
}
