// Command flitcrash runs crash-recovery validation in two modes.
//
// The default mode is randomized: workers hammer a durable structure,
// crash at seeded instruction counts, the persistent image is recovered,
// and the surviving state is checked for durable linearizability.
//
// With -dlcheck it runs the systematic enumerator (internal/dlcheck)
// instead: one recorded execution per round is checked at every
// PWB/PFence boundary (bounded by -dlbudget) across the structures, the
// durable queue and the sharded store. On a violation the minimal repro
// trace (crash boundary + truncated schedule + recovered-state diff) is
// printed and, with -dltrace, written to a file for CI artifacts.
//
// With -chaos it runs the service-boundary battery (internal/crashtest
// chaos harness): real client pipelines against the network server under
// injected transport faults (resets, partial writes, delays, blackholes),
// admission-control overload, and mid-run drain; the store then crashes
// (DropUnfenced) and every acknowledged operation must survive recovery.
// Each run also replays a deliberately broken drain that acks without
// executing — the battery must flag it, or the run fails as toothless.
// Failure traces go to -chaostrace.
//
// A non-zero exit means a violation was found.
//
// Usage:
//
//	flitcrash -rounds 200
//	flitcrash -ds bst -mode manual -policy flit-adjacent -rounds 50 -v
//	flitcrash -dlcheck -rounds 2 -dlbudget 64 -dltrace dlcheck-trace.txt
//	flitcrash -dlcheck -ds store -dlbudget 0
//	flitcrash -chaos -rounds 2 -chaostrace chaos-trace.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flit/internal/core"
	"flit/internal/crashtest"
	"flit/internal/dlcheck"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func policyByName(name string, words int) core.Policy {
	// The no-persist baseline fails durable-linearizability checks by
	// design; running it here would report its losses as violations.
	if name == core.PolicyNoPersist {
		fmt.Fprintf(os.Stderr, "flitcrash: policy %q cannot pass a crash check by design; pick a persisting policy\n", name)
		os.Exit(2)
	}
	// Crash testing wants small counter tables: collisions only add
	// flushes, and small tables stress the hashing harder.
	htBytes := 1 << 14
	if name == core.PolicyPacked {
		htBytes = 1 << 12
	}
	pol, err := core.NewPolicyByName(name, words, htBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
		os.Exit(2)
	}
	return pol
}

func modeByName(name string) dstruct.Mode {
	m, ok := dstruct.ModeByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "flitcrash: unknown mode %q (known: %v)\n", name, dstruct.Modes)
		os.Exit(2)
	}
	return m
}

func main() {
	rounds := flag.Int("rounds", 60, "seeded crash rounds per combination")
	dsFilter := flag.String("ds", "", "restrict to one structure (list|hashtable|skiplist|bst|lockmap; with -dlcheck also queue|store|store-batched|store-combined|store-split)")
	modeFilter := flag.String("mode", "", "restrict to one durability mode (automatic|nvtraverse|manual)")
	polFilter := flag.String("policy", "", "restrict to one policy (flit-ht|flit-adjacent|flit-packed|flit-perline|plain|izraelevitz|link-and-persist)")
	seed0 := flag.Int64("seed", 1, "first seed")
	verbose := flag.Bool("v", false, "print every round")
	dl := flag.Bool("dlcheck", false, "systematic mode: check every PWB/PFence boundary of recorded executions")
	dlBudget := flag.Int("dlbudget", 512, "crash points checked per dlcheck run (0 = every boundary)")
	dlTrace := flag.String("dltrace", "", "write violation repro traces to this file (dlcheck mode)")
	chaos := flag.Bool("chaos", false, "chaos mode: fault-injected client/server scenarios, crash, recover, check acked ops")
	chaosTrace := flag.String("chaostrace", "", "write chaos failure traces to this file (chaos mode)")
	flag.Parse()

	if *dl && *chaos {
		fmt.Fprintln(os.Stderr, "flitcrash: -dlcheck and -chaos are mutually exclusive")
		os.Exit(2)
	}
	if *dl {
		os.Exit(runDLCheck(*rounds, *dsFilter, *modeFilter, *polFilter, *seed0, *dlBudget, *dlTrace, *verbose))
	}
	if *chaos {
		os.Exit(runChaos(*rounds, *seed0, *polFilter, *chaosTrace, *verbose))
	}

	const words = 1 << 20
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	start := time.Now()
	total, failures := 0, 0

	for _, target := range crashtest.Targets() {
		if *dsFilter != "" && target.Name != *dsFilter {
			continue
		}
		polNames := []string{"flit-ht", "flit-adjacent", "plain"}
		if target.WithLAP {
			polNames = append(polNames, "link-and-persist")
		}
		if *polFilter != "" {
			if *polFilter == core.PolicyLAP && !target.WithLAP {
				continue // inapplicable (general stores, not CAS-only)
			}
			polNames = []string{*polFilter}
		}
		modes := dstruct.Modes
		if *modeFilter != "" {
			modes = []dstruct.Mode{modeByName(*modeFilter)}
		}
		for _, mode := range modes {
			for _, polName := range polNames {
				for r := 0; r < *rounds; r++ {
					seed := *seed0 + int64(r)
					cm := crashModes[r%len(crashModes)]
					pol := policyByName(polName, words)
					mcfg := pmem.DefaultConfig(words)
					// Crash validation never reads a latency number: the
					// virtual clock keeps modeled costs at spin-free speed.
					mcfg.VirtualClock = true
					cfg := dstruct.Config{
						Heap: pheap.New(pmem.New(mcfg)), Policy: pol, Mode: mode,
						RootSlot: 0, Stride: dstruct.StrideFor(pol),
					}
					v, _ := crashtest.Run(cfg, target, crashtest.DefaultOptions(seed, cm))
					total++
					if v != nil {
						failures++
						fmt.Printf("VIOLATION %s/%s/%s seed=%d crash=%v\n%v\n",
							target.Name, mode, polName, seed, cm, v)
					} else if *verbose {
						fmt.Printf("ok %s/%s/%s seed=%d crash=%v\n", target.Name, mode, polName, seed, cm)
					}
				}
			}
		}
	}
	if total == 0 {
		fmt.Fprintf(os.Stderr, "flitcrash: no rounds matched -ds %q / -mode %q / -policy %q (structures: list|hashtable|skiplist|lockmap|bst; queue|store need -dlcheck; link-and-persist applies only to list|hashtable|skiplist|lockmap)\n",
			*dsFilter, *modeFilter, *polFilter)
		os.Exit(2)
	}
	fmt.Printf("flitcrash: %d rounds, %d violations, %v\n", total, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// runDLCheck drives the systematic battery: structures × modes ×
// policies, the durable queue, the sharded store, and the store's
// batched (group-commit) request path, each recorded execution checked
// at every (budgeted) persist boundary.
func runDLCheck(rounds int, dsFilter, modeFilter, polFilter string, seed0 int64, budget int, tracePath string, verbose bool) int {
	start := time.Now()
	total, points, records := 0, 0, 0
	var violations []string

	report := func(name string, rep *dlcheck.Report, seed int64) {
		total++
		points += rep.Points
		records += rep.Records
		if rep.Violation != nil {
			violations = append(violations, rep.Violation.Error())
			fmt.Printf("VIOLATION %s seed=%d\n%v\n", name, seed, rep.Violation)
		} else if verbose {
			fmt.Printf("ok %s seed=%d records=%d fences=%d points=%d ops=%d\n",
				name, seed, rep.Records, rep.Fences, rep.Points, rep.Ops)
		}
	}
	modes := dstruct.Modes
	if modeFilter != "" {
		modes = []dstruct.Mode{modeByName(modeFilter)}
	}
	// Validate the policy filter once, up front: policyByName rejects
	// unknown names and the by-design-failing no-persist baseline, so the
	// store path (which constructs policies via store.New, not
	// policyByName) can't report a usage error as a violation.
	if polFilter != "" {
		policyByName(polFilter, dlcheck.Words)
	}
	polNamesFor := func(withLAP bool) []string {
		if polFilter != "" {
			if polFilter == core.PolicyLAP && !withLAP {
				return nil // inapplicable to this target; skip, don't panic
			}
			return []string{polFilter}
		}
		names := []string{core.PolicyHT, core.PolicyAdjacent, core.PolicyPlain, core.PolicyIz}
		if withLAP {
			names = append(names, core.PolicyLAP)
		}
		return names
	}

	for _, target := range crashtest.Targets() {
		if dsFilter != "" && target.Name != dsFilter {
			continue
		}
		for _, mode := range modes {
			for _, polName := range polNamesFor(target.WithLAP) {
				for r := 0; r < rounds; r++ {
					seed := seed0 + int64(r)
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := dlcheck.RunSet(dlcheck.NewConfig(policyByName(polName, dlcheck.Words), mode), target.DL(), opts)
					report(fmt.Sprintf("%s/%s/%s", target.Name, mode, polName), rep, seed)
				}
			}
		}
	}

	// The queue passes explicit pflags (manual durability); honor a -mode
	// filter by treating its runs as manual-only. Link-and-persist
	// applies (CAS-only stores).
	if (dsFilter == "" || dsFilter == "queue") && (modeFilter == "" || modeByName(modeFilter) == dstruct.Manual) {
		for _, polName := range polNamesFor(true) {
			for r := 0; r < rounds; r++ {
				seed := seed0 + int64(r)
				opts := dlcheck.DefaultOptions(seed)
				opts.OpsPerWorker = 8 // whole-history FIFO search
				opts.Budget = budget
				rep := crashtest.RunQueueDL(dlcheck.NewConfig(policyByName(polName, dlcheck.Words), dstruct.Manual), opts)
				report("queue/"+polName, rep, seed)
			}
		}
	}

	if dsFilter == "" || dsFilter == "store" {
		for _, mode := range modes {
			// Link-and-persist applies at service granularity too (the
			// randomized store battery covers it); keep it enumerated so
			// the failed-p-CAS dirty-flush path is checked here as well.
			for _, polName := range polNamesFor(true) {
				for r := 0; r < rounds; r++ {
					seed := seed0 + int64(r)
					st, err := crashtest.NewDLStore(polName, mode)
					if err != nil {
						fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
						return 2
					}
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := crashtest.RunStoreDL(st, opts)
					report(fmt.Sprintf("store/%s/%s", mode, polName), rep, seed)
				}
			}
		}
	}

	// The batched (group-commit) request path: the network server's
	// executor — pipelined batches, one commit fence per batch, responses
	// recorded only after it — enumerated exactly like the per-op store.
	if dsFilter == "" || dsFilter == "store-batched" {
		for _, mode := range modes {
			for _, polName := range polNamesFor(true) {
				for r := 0; r < rounds; r++ {
					seed := seed0 + int64(r)
					st, err := crashtest.NewDLStore(polName, mode)
					if err != nil {
						fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
						return 2
					}
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := crashtest.RunStoreBatchedDL(st, opts)
					report(fmt.Sprintf("store-batched/%s/%s", mode, polName), rep, seed)
				}
			}
		}
	}

	// The embedded flat-combining path: sessions announce op vectors to
	// per-shard combiners, one fence per combining window, results
	// published only after it — so the enumeration covers boundaries
	// inside windows merging several sessions' vectors at once.
	if dsFilter == "" || dsFilter == "store-combined" {
		for _, mode := range modes {
			for _, polName := range polNamesFor(true) {
				for r := 0; r < rounds; r++ {
					seed := seed0 + int64(r)
					st, err := crashtest.NewDLStore(polName, mode)
					if err != nil {
						fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
						return 2
					}
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := crashtest.RunStoreCombinedDL(st, opts)
					report(fmt.Sprintf("store-combined/%s/%s", mode, polName), rep, seed)
				}
			}
		}
	}

	// The online shard-split path: a 4→6 split (non-doubling, so keys move
	// between serving shards as well as into new ones) migrates while the
	// workers run, and every enumerated boundary — before activation, mid
	// migration, after completion — must recover a complete, duplicate-free
	// keyspace.
	if dsFilter == "" || dsFilter == "store-split" {
		for _, mode := range modes {
			for _, polName := range polNamesFor(true) {
				for r := 0; r < rounds; r++ {
					seed := seed0 + int64(r)
					st, err := crashtest.NewDLStore(polName, mode)
					if err != nil {
						fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
						return 2
					}
					opts := dlcheck.DefaultOptions(seed)
					opts.Budget = budget
					rep := crashtest.RunStoreSplitDL(st, 6, opts)
					report(fmt.Sprintf("store-split/%s/%s", mode, polName), rep, seed)
				}
			}
		}
	}

	if total == 0 {
		fmt.Fprintf(os.Stderr, "flitcrash: no dlcheck runs matched -ds %q / -mode %q / -policy %q (structures: list|hashtable|skiplist|lockmap|bst|queue|store|store-batched|store-combined|store-split; the queue is manual-only, link-and-persist applies only to list|hashtable|skiplist|lockmap|queue)\n",
			dsFilter, modeFilter, polFilter)
		return 2
	}
	fmt.Printf("flitcrash -dlcheck: %d runs, %d persist records, %d crash points checked, %d violations, %v\n",
		total, records, points, len(violations), time.Since(start).Round(time.Millisecond))
	if len(violations) > 0 {
		if tracePath != "" {
			if err := os.WriteFile(tracePath, []byte(strings.Join(violations, "\n\n")), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "flitcrash: writing %s: %v\n", tracePath, err)
			} else {
				fmt.Printf("flitcrash -dlcheck: repro traces written to %s\n", tracePath)
			}
		}
		return 1
	}
	return 0
}
