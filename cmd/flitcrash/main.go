// Command flitcrash runs randomized crash-recovery validation: workers
// hammer a durable structure, crash at seeded instruction counts, the
// persistent image is recovered, and the surviving state is checked for
// durable linearizability. A non-zero exit means a violation was found
// (and printed with the full per-key history).
//
// Usage:
//
//	flitcrash -rounds 200
//	flitcrash -ds bst -mode manual -policy flit-adjacent -rounds 50 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flit/internal/core"
	"flit/internal/crashtest"
	"flit/internal/dstruct"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

func policyByName(name string, words int) core.Policy {
	// The no-persist baseline fails durable-linearizability checks by
	// design; running it here would report its losses as violations.
	if name == core.PolicyNoPersist {
		fmt.Fprintf(os.Stderr, "flitcrash: policy %q cannot pass a crash check by design; pick a persisting policy\n", name)
		os.Exit(2)
	}
	// Crash testing wants small counter tables: collisions only add
	// flushes, and small tables stress the hashing harder.
	htBytes := 1 << 14
	if name == core.PolicyPacked {
		htBytes = 1 << 12
	}
	pol, err := core.NewPolicyByName(name, words, htBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
		os.Exit(2)
	}
	return pol
}

func modeByName(name string) dstruct.Mode {
	m, ok := dstruct.ModeByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "flitcrash: unknown mode %q (known: %v)\n", name, dstruct.Modes)
		os.Exit(2)
	}
	return m
}

func main() {
	rounds := flag.Int("rounds", 60, "seeded crash rounds per combination")
	dsFilter := flag.String("ds", "", "restrict to one structure (list|hashtable|skiplist|bst)")
	modeFilter := flag.String("mode", "", "restrict to one durability mode (automatic|nvtraverse|manual)")
	polFilter := flag.String("policy", "", "restrict to one policy (flit-ht|flit-adjacent|flit-packed|flit-perline|plain|izraelevitz|link-and-persist)")
	seed0 := flag.Int64("seed", 1, "first seed")
	verbose := flag.Bool("v", false, "print every round")
	flag.Parse()

	const words = 1 << 20
	crashModes := []pmem.CrashMode{pmem.DropUnfenced, pmem.RandomSubset, pmem.PersistAll}
	start := time.Now()
	total, failures := 0, 0

	for _, target := range crashtest.Targets() {
		if *dsFilter != "" && target.Name != *dsFilter {
			continue
		}
		polNames := []string{"flit-ht", "flit-adjacent", "plain"}
		if target.WithLAP {
			polNames = append(polNames, "link-and-persist")
		}
		if *polFilter != "" {
			polNames = []string{*polFilter}
		}
		modes := dstruct.Modes
		if *modeFilter != "" {
			modes = []dstruct.Mode{modeByName(*modeFilter)}
		}
		for _, mode := range modes {
			for _, polName := range polNames {
				for r := 0; r < *rounds; r++ {
					seed := *seed0 + int64(r)
					cm := crashModes[r%len(crashModes)]
					pol := policyByName(polName, words)
					mcfg := pmem.DefaultConfig(words)
					// Crash validation never reads a latency number: the
					// virtual clock keeps modeled costs at spin-free speed.
					mcfg.VirtualClock = true
					cfg := dstruct.Config{
						Heap: pheap.New(pmem.New(mcfg)), Policy: pol, Mode: mode,
						RootSlot: 0, Stride: dstruct.StrideFor(pol),
					}
					v, _ := crashtest.Run(cfg, target, crashtest.DefaultOptions(seed, cm))
					total++
					if v != nil {
						failures++
						fmt.Printf("VIOLATION %s/%s/%s seed=%d crash=%v\n%v\n",
							target.Name, mode, polName, seed, cm, v)
					} else if *verbose {
						fmt.Printf("ok %s/%s/%s seed=%d crash=%v\n", target.Name, mode, polName, seed, cm)
					}
				}
			}
		}
	}
	fmt.Printf("flitcrash: %d rounds, %d violations, %v\n", total, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}
