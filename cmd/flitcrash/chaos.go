package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"flit/internal/core"
	"flit/internal/crashtest"
	"flit/internal/store"
)

// runChaos drives the service-boundary chaos battery: every fault ×
// policy scenario must keep acked⇒persisted through a DropUnfenced
// crash, and the deliberately broken drain (the tooth) MUST be flagged —
// a battery that cannot catch the planted bug proves nothing about the
// real ones. Non-zero return: 1 = violation (or toothless battery),
// 2 = setup failure.
func runChaos(rounds int, seed0 int64, polFilter, tracePath string, verbose bool) int {
	polNames := []string{core.PolicyHT, core.PolicyAdjacent}
	if polFilter != "" {
		policyByName(polFilter, 1<<20) // validates the name, rejects no-persist
		polNames = []string{polFilter}
	}
	newStore := func(pol string) (*store.Store, error) {
		return store.New(store.Options{
			Shards: 4, ExpectedKeys: 1 << 12, Policy: pol,
			HTBytes: 1 << 16, VirtualClock: true,
		})
	}

	start := time.Now()
	total, toothRounds := 0, 0
	var failures []string
	fail := func(msg string) {
		failures = append(failures, msg)
		fmt.Println(msg)
	}

	for r := 0; r < rounds; r++ {
		seed := seed0 + int64(r)
		for _, pol := range polNames {
			for _, sc := range crashtest.ChaosScenarios() {
				st, err := newStore(pol)
				if err != nil {
					fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
					return 2
				}
				v, err := crashtest.RunStoreChaos(st, sc, seed)
				total++
				if err != nil {
					fail(fmt.Sprintf("CHAOS ERROR %s/%s seed=%d: %v", sc.Name, pol, seed, err))
					continue
				}
				if v.Violation != nil {
					fail(fmt.Sprintf("CHAOS VIOLATION %s/%s seed=%d (acked=%d shed=%d lost=%d)\n%v",
						sc.Name, pol, seed, v.Acked, v.Shed, v.Lost, v.Violation))
					continue
				}
				if v.Acked == 0 {
					fail(fmt.Sprintf("CHAOS VACUOUS %s/%s seed=%d: no op was ever acked (shed=%d lost=%d)",
						sc.Name, pol, seed, v.Shed, v.Lost))
					continue
				}
				if verbose {
					fmt.Printf("ok chaos %s/%s seed=%d acked=%d shed=%d lost=%d redials=%d\n",
						sc.Name, pol, seed, v.Acked, v.Shed, v.Lost, v.Redials)
				}
			}

			// The must-fail control: the broken drain has to be caught.
			st, err := newStore(pol)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flitcrash: %v\n", err)
				return 2
			}
			v, err := crashtest.RunStoreChaos(st, crashtest.BrokenDrainScenario(), seed)
			total++
			toothRounds++
			switch {
			case err != nil:
				fail(fmt.Sprintf("CHAOS TOOTH ERROR %s seed=%d: %v", pol, seed, err))
			case v.Violation == nil:
				fail(fmt.Sprintf("CHAOS TOOTHLESS %s seed=%d: broken drain was NOT detected (acked=%d shed=%d lost=%d)",
					pol, seed, v.Acked, v.Shed, v.Lost))
			case verbose:
				fmt.Printf("ok chaos broken-drain-tooth/%s seed=%d bit as required\n", pol, seed)
			}
		}
	}

	fmt.Printf("flitcrash -chaos: %d rounds (%d tooth), %d failures, %v\n",
		total, toothRounds, len(failures), time.Since(start).Round(time.Millisecond))
	if len(failures) > 0 {
		if tracePath != "" {
			if err := os.WriteFile(tracePath, []byte(strings.Join(failures, "\n\n")), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "flitcrash: writing %s: %v\n", tracePath, err)
			} else {
				fmt.Printf("flitcrash -chaos: failure traces written to %s\n", tracePath)
			}
		}
		return 1
	}
	return 0
}
