// Command flitvet is the multichecker driver for this repository's
// static-analysis suite (internal/analysis): four analyzers that
// enforce the persistence, lifecycle, ack-ordering, and hot-path
// disciplines at review time.
//
// Usage:
//
//	flitvet [-run analyzers] [-dir dir] [-list] [-v] packages...
//
// Packages are `go list` patterns (typically ./...). flitvet exits 0
// when no unsuppressed findings remain, 1 when there are findings, and
// 2 on usage or load errors. Suppress an individual finding with
//
//	//flitvet:ignore <analyzer> <reason>
//
// on the flagged line, the line above it, or in the enclosing
// function's doc comment. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"flit/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("flitvet", flag.ContinueOnError)
	var (
		runList = fs.String("run", "", "comma-separated analyzers to run (default: all)")
		dir     = fs.String("dir", ".", "directory to resolve package patterns in")
		list    = fs.Bool("list", false, "list analyzers and exit")
		verbose = fs.Bool("v", false, "print per-package progress")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: flitvet [-run analyzers] [-dir dir] [-list] [-v] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	analyzers, err := analysis.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flitvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flitvet:", err)
		return 2
	}
	findings := 0
	loadErrs := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "flitvet: checking %s\n", pkg.PkgPath)
		}
		for _, e := range pkg.LoadErrors {
			fmt.Fprintf(os.Stderr, "flitvet: %s: load error: %s\n", pkg.PkgPath, e)
			loadErrs++
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if loadErrs > 0 {
		return 2
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "flitvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
