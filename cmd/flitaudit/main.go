// Command flitaudit runs data-structure workloads under the runtime P-V
// Interface auditor (internal/audit): every instruction's dependencies
// are tracked per Definition 1 of the paper, and any shared store or
// operation completion whose dependencies are not persisted is reported
// with the offending address — the tool to reach for when a new
// durability-mode pflag assignment misbehaves.
//
// Usage:
//
//	flitaudit                 # audit every structure x durability mode
//	flitaudit -ds bst -mode manual -ops 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"flit/internal/audit"
	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/dstruct/bst"
	"flit/internal/dstruct/hashtable"
	"flit/internal/dstruct/list"
	"flit/internal/dstruct/lockmap"
	"flit/internal/dstruct/queue"
	"flit/internal/dstruct/skiplist"
	"flit/internal/pheap"
	"flit/internal/pmem"
)

var structures = []string{"list", "hashtable", "skiplist", "bst", "lockmap", "queue"}

func main() {
	dsFilter := flag.String("ds", "", "restrict to one structure (list|hashtable|skiplist|bst|lockmap|queue)")
	modeFilter := flag.String("mode", "", "restrict to one durability mode (automatic|nvtraverse|manual)")
	ops := flag.Int("ops", 2000, "operations per audited run")
	keys := flag.Int("keys", 97, "key range")
	flag.Parse()

	failures := 0
	for _, name := range structures {
		if *dsFilter != "" && name != *dsFilter {
			continue
		}
		for _, mode := range dstruct.Modes {
			if *modeFilter != "" && mode.String() != *modeFilter {
				continue
			}
			mcfg := pmem.DefaultConfig(1 << 22)
			mcfg.PWBCost, mcfg.PFenceCost, mcfg.PFenceEntryCost = 0, 0, 0
			mem := pmem.New(mcfg)
			aud := audit.New(core.NewFliT(core.NewHashTable(1<<16)), mem)
			cfg := dstruct.Config{
				Heap: pheap.New(mem), Policy: aud, Mode: mode,
				RootSlot: 0, Stride: dstruct.StrideFor(aud.Inner),
			}
			runWorkload(name, cfg, *ops, uint64(*keys))
			vs := aud.Violations()
			status := "ok"
			if len(vs) > 0 {
				status = fmt.Sprintf("%d VIOLATIONS", len(vs))
				failures++
			}
			fmt.Printf("%-10s %-11s %6d ops  %s\n", name, mode, *ops, status)
			for i, v := range vs {
				if i == 3 {
					fmt.Printf("   ... %d more\n", len(vs)-3)
					break
				}
				fmt.Printf("   %v\n", v)
			}
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func runWorkload(name string, cfg dstruct.Config, ops int, keys uint64) {
	if name == "queue" {
		q := queue.New(cfg)
		th := q.NewThread()
		for i := 0; i < ops; i++ {
			if i%3 == 0 {
				th.Dequeue()
			} else {
				th.Enqueue(uint64(i))
			}
		}
		return
	}
	var set dstruct.Set
	switch name {
	case "list":
		set = list.New(cfg)
	case "hashtable":
		set = hashtable.New(cfg, 16)
	case "skiplist":
		set = skiplist.New(cfg)
	case "bst":
		set = bst.New(cfg)
	case "lockmap":
		set = lockmap.New(cfg, 16)
	}
	th := set.NewThread()
	for i := 0; i < ops; i++ {
		k := uint64(i*7) % keys
		switch i % 3 {
		case 0:
			th.Insert(k, k)
		case 1:
			th.Delete(k)
		default:
			th.Contains(k)
		}
	}
}
