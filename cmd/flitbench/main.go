// Command flitbench regenerates the tables and figures of the FliT paper's
// evaluation section (§6) on the simulated-NVRAM substrate.
//
// Usage:
//
//	flitbench -fig 7                # one figure
//	flitbench -fig all -duration 500ms -out results.txt
//	flitbench -list                 # enumerate figure ids
//
// Figures: 5 (flit-HT size tuning), 6 (thread scalability), 7 (structures x
// durability x policy), 8 (update-ratio sweep, normalized), 9 (flushes per
// operation), plus ablations: ablation-inv (clwb invalidation),
// ablation-pack (packed counters), ablation-line (per-cache-line
// counters), ablation-iz (Izraelevitz et al. baseline).
//
// Absolute throughput is simulated-memory throughput; the paper's shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"flit/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (5,6,7,8,9,ablation-inv,ablation-pack,ablation-line,ablation-iz,ablation-zipf,all)")
	duration := flag.Duration("duration", 250*time.Millisecond, "measured duration per cell")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads (the paper used 44)")
	small := flag.Bool("small", false, "restrict Figure 8 to small structure sizes")
	invalidate := flag.Bool("invalidate", false, "model the invalidating clwb of Cascade Lake everywhere")
	out := flag.String("out", "", "also append output to this file")
	repeats := flag.Int("repeats", 1, "average each cell over N runs (the paper used 5)")
	csv := flag.String("csv", "", "also append CSV-formatted tables to this file")
	listFigs := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	if *listFigs {
		for _, id := range harness.FigureOrder {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flitbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := harness.Options{
		Threads:    *threads,
		Duration:   *duration,
		Small:      *small,
		Invalidate: *invalidate,
		Repeats:    *repeats,
	}
	var csvFile *os.File
	if *csv != "" {
		f, err := os.OpenFile(*csv, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flitbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = harness.FigureOrder
	}
	fmt.Fprintf(w, "flitbench: %d threads, %v per cell, invalidating-clwb=%v\n\n",
		opts.Threads, opts.Duration, opts.Invalidate)
	for _, id := range ids {
		run, ok := harness.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "flitbench: unknown figure %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		for _, table := range run(opts) {
			fmt.Fprintln(w, table.Format())
			if csvFile != nil {
				fmt.Fprintln(csvFile, table.CSV())
			}
		}
		fmt.Fprintf(w, "(figure %s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
