// Command flitbench regenerates the tables and figures of the FliT paper's
// evaluation section (§6) on the simulated-NVRAM substrate, runs the
// declarative benchmark matrices of internal/bench, and diffs benchmark
// reports for the CI perf-regression gate.
//
// Usage:
//
//	flitbench -fig 7                          # one figure, text tables
//	flitbench -fig all -duration 500ms -out results.txt
//	flitbench -fig 7 -json r.json             # figure + BenchReport JSON
//	flitbench -matrix smoke -json r.json      # declarative matrix run
//	flitbench -list                           # enumerate figure ids
//	flitbench compare old.json new.json -threshold 10%
//
// Figures: 5 (flit-HT size tuning), 6 (thread scalability), 7 (structures x
// durability x policy), 8 (update-ratio sweep, normalized), 9 (flushes per
// operation), plus ablations: ablation-inv (clwb invalidation),
// ablation-pack (packed counters), ablation-line (per-cache-line
// counters), ablation-iz (Izraelevitz et al. baseline).
//
// Matrices: smoke (the CI perf gate's small fixed grid), full (the
// nightly grid). `compare` exits non-zero when any cell of the new
// report degrades beyond the threshold relative to the old one, or when
// a baseline cell is missing — see EXPERIMENTS.md for how CI uses it
// against the committed BENCH_baseline.json.
//
// Absolute throughput is simulated-memory throughput; the paper's shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"flit/internal/bench"
	"flit/internal/harness"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		runCompare(os.Args[2:])
		return
	}

	fig := flag.String("fig", "all", "figure to regenerate (5,6,7,8,9,ablation-inv,ablation-pack,ablation-line,ablation-iz,ablation-zipf,all)")
	matrix := flag.String("matrix", "", fmt.Sprintf("run a declarative benchmark matrix instead of figures (%s)", strings.Join(bench.PresetNames(), "|")))
	duration := flag.Duration("duration", 250*time.Millisecond, "measured duration per cell")
	warmup := flag.Duration("warmup", 0, "matrix mode: discarded warm-up window per cell (0 disables; default duration/2)")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads (the paper used 44)")
	small := flag.Bool("small", false, "restrict Figure 8 to small structure sizes")
	invalidate := flag.Bool("invalidate", false, "model the invalidating clwb of Cascade Lake everywhere")
	out := flag.String("out", "", "also append output to this file")
	repeats := flag.Int("repeats", 1, "average each cell over N runs (the paper used 5)")
	seed := flag.Int64("seed", 1, "matrix mode: workload generator seed")
	vclock := flag.Bool("vclock", false, "matrix mode: virtual-clock cost accounting (no spin loops; pwbs/op cells identical, throughput cells not comparable with spin-mode reports)")
	csv := flag.String("csv", "", "also append CSV-formatted tables to this file")
	jsonOut := flag.String("json", "", "write a machine-readable BenchReport (see internal/bench) to this file")
	listFigs := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	if *listFigs {
		for _, id := range harness.FigureOrder {
			fmt.Println(id)
		}
		return
	}

	if *matrix != "" {
		runMatrix(*matrix, *threads, *duration, *warmup, *repeats, *seed, *vclock, *jsonOut)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := harness.Options{
		Threads:    *threads,
		Duration:   *duration,
		Small:      *small,
		Invalidate: *invalidate,
		Repeats:    *repeats,
	}
	var csvFile *os.File
	if *csv != "" {
		f, err := os.OpenFile(*csv, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csvFile = f
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = harness.FigureOrder
	}
	fmt.Fprintf(w, "flitbench: %d threads, %v per cell, invalidating-clwb=%v\n\n",
		opts.Threads, opts.Duration, opts.Invalidate)
	figures := make(map[string][]*harness.Table)
	for _, id := range ids {
		run, ok := harness.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "flitbench: unknown figure %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tables := run(opts)
		figures[id] = tables
		for _, table := range tables {
			fmt.Fprintln(w, table.Format())
			if csvFile != nil {
				fmt.Fprintln(csvFile, table.CSV())
			}
		}
		fmt.Fprintf(w, "(figure %s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut != "" {
		cfg := map[string]string{
			"figures":  strings.Join(ids, ","),
			"threads":  fmt.Sprint(opts.Threads),
			"duration": opts.Duration.String(),
			"repeats":  fmt.Sprint(opts.Repeats),
		}
		rep := bench.FromTables(cfg, figures)
		if err := rep.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "wrote %d cells to %s\n", len(rep.Cells), *jsonOut)
	}
}

// runMatrix executes a preset matrix, applying whichever measurement
// flags the user set explicitly.
func runMatrix(name string, threads int, duration, warmup time.Duration, repeats int, seed int64, vclock bool, jsonOut string) {
	m, ok := bench.Preset(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "flitbench: unknown matrix %q (known: %s)\n", name, strings.Join(bench.PresetNames(), ", "))
		os.Exit(1)
	}
	m.VirtualClock = vclock
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["threads"] {
		m.Threads = threads
	}
	if set["duration"] {
		m.Duration = duration
	}
	if set["warmup"] {
		m.Warmup = warmup
		if warmup == 0 {
			m.Warmup = -1 // explicit zero: disable, don't re-default
		}
	}
	if set["repeats"] {
		m.Repeats = repeats
	}
	if set["seed"] {
		m.Seed = seed
	}
	start := time.Now()
	rep, err := m.Run()
	if err != nil {
		fatal(err)
	}
	for _, c := range rep.Cells {
		fmt.Printf("%-60s %14.4g ±%-10.3g %s\n", c.ID, c.Value.Mean, c.Value.Stddev, c.Unit)
	}
	fmt.Printf("(matrix %s: %d cells in %v)\n", name, len(rep.Cells), time.Since(start).Round(time.Millisecond))
	if jsonOut != "" {
		if err := rep.WriteFile(jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}

// runCompare diffs two BenchReports and exits 1 on regression. Flags
// are accepted before or after the file arguments. -lower-threshold
// gates the lower-is-better cells (flush rates, latency) separately —
// they are near-deterministic, so they can be held far tighter than
// host-noisy throughput.
func runCompare(args []string) {
	threshold := "10%"
	lowerThreshold := ""
	var files []string
	takeValue := func(i *int, name string) string {
		*i++
		if *i >= len(args) {
			fatal(fmt.Errorf("compare: %s needs a value", name))
		}
		return args[*i]
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			threshold = takeValue(&i, a)
		case strings.HasPrefix(a, "-threshold="):
			threshold = strings.TrimPrefix(a, "-threshold=")
		case strings.HasPrefix(a, "--threshold="):
			threshold = strings.TrimPrefix(a, "--threshold=")
		case a == "-lower-threshold" || a == "--lower-threshold":
			lowerThreshold = takeValue(&i, a)
		case strings.HasPrefix(a, "-lower-threshold="):
			lowerThreshold = strings.TrimPrefix(a, "-lower-threshold=")
		case strings.HasPrefix(a, "--lower-threshold="):
			lowerThreshold = strings.TrimPrefix(a, "--lower-threshold=")
		case a == "-h" || a == "-help" || a == "--help":
			fmt.Fprintln(os.Stderr, "usage: flitbench compare old.json new.json [-threshold 10%] [-lower-threshold 10%]")
			return
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		fatal(fmt.Errorf("compare: want exactly two report files, got %d (usage: flitbench compare old.json new.json [-threshold 10%%])", len(files)))
	}
	th, err := bench.ParseThreshold(threshold)
	if err != nil {
		fatal(err)
	}
	lth := th
	if lowerThreshold != "" {
		if lth, err = bench.ParseThreshold(lowerThreshold); err != nil {
			fatal(err)
		}
	}
	oldRep, err := bench.ReadFile(files[0])
	if err != nil {
		fatal(err)
	}
	newRep, err := bench.ReadFile(files[1])
	if err != nil {
		fatal(err)
	}
	res, err := bench.CompareThresholds(oldRep, newRep, th, lth)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	if !res.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flitbench:", err)
	os.Exit(1)
}
