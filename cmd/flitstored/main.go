// Command flitstored serves a FliT-Store over the network front-end's
// pipelined binary protocol with group-commit durability batching: each
// connection's pipeline executes as one batch under a single fence
// before any response is written (see internal/server).
//
// Usage:
//
//	flitstored -listen 127.0.0.1:7117 -records 100000
//	flitstored -unix /tmp/flitstored.sock -policy flit-ht -shards 8
//
// The store lives in simulated persistent memory inside the process;
// -records prefills the keyspace in-process before serving (the YCSB
// load phase), so load generators can start on a warm store.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/server"
	"flit/internal/store"
	"flit/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7117", "TCP listen address (ignored with -unix)")
	unixPath := flag.String("unix", "", "serve on a unix socket at this path instead of TCP")
	shards := flag.Int("shards", 8, "store shard count")
	policy := flag.String("policy", core.PolicyHT, "persistence policy")
	modeName := flag.String("mode", dstruct.Automatic.String(), "durability mode (automatic|nvtraverse|manual)")
	expected := flag.Int("expected-keys", 1<<16, "expected keyspace size (memory sizing)")
	records := flag.Uint64("records", 0, "prefill this many records in-process before serving")
	batch := flag.Int("batch", 64, "max operations per group commit")
	threads := flag.Int("load-threads", 4, "prefill parallelism")
	vclock := flag.Bool("vclock", false, "virtual-clock cost mode (no spin latency)")
	flag.Parse()

	mode, ok := dstruct.ModeByName(*modeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "flitstored: unknown mode %q (known: %v)\n", *modeName, dstruct.Modes)
		os.Exit(2)
	}
	st, err := store.New(store.Options{
		Shards: *shards, ExpectedKeys: *expected, Policy: *policy,
		Mode: mode, VirtualClock: *vclock,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitstored: %v\n", err)
		os.Exit(2)
	}
	if *records > 0 {
		elapsed, ops := workload.Load(st, *records, *threads)
		fmt.Printf("flitstored: loaded %d records in %v (%.0f ops/s)\n", *records, elapsed.Round(0), ops)
	}

	network, addr := "tcp", *listen
	if *unixPath != "" {
		network, addr = "unix", *unixPath
		os.Remove(addr) // stale socket from a previous run
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitstored: %v\n", err)
		os.Exit(2)
	}
	srv := server.New(st, server.Options{MaxBatch: *batch})

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		srv.Close()
	}()

	fmt.Printf("flitstored: serving %s/%s on %s://%s (batch %d)\n",
		st.Opts().Policy, mode, network, ln.Addr(), *batch)
	err = srv.Serve(ln)
	stats := srv.Stats()
	fmt.Printf("flitstored: served %d ops in %d batches over %d conns (%.1f ops/batch)\n",
		stats.OpsServed, stats.Batches, stats.Conns,
		float64(stats.OpsServed)/max(1, float64(stats.Batches)))
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	if err != nil && err != server.ErrClosed {
		fmt.Fprintf(os.Stderr, "flitstored: %v\n", err)
		os.Exit(1)
	}
}
