// Command flitstored serves a FliT-Store over the network front-end's
// pipelined binary protocol with group-commit durability batching: each
// connection's pipeline executes as one batch under a single fence
// before any response is written (see internal/server).
//
// Usage:
//
//	flitstored -listen 127.0.0.1:7117 -records 100000
//	flitstored -unix /tmp/flitstored.sock -policy flit-ht -shards 8
//
// The store lives in simulated persistent memory inside the process;
// -records prefills the keyspace in-process before serving (the YCSB
// load phase), so load generators can start on a warm store. With
// -recover the prefilled store is crash-simulated (unfenced write-backs
// dropped) and rebuilt from its persistent image before serving, so the
// recovery metrics on /metrics describe a real rebuild.
//
// Observability: metrics are on by default (-metrics=false turns the
// lock-free core off). -metrics-addr serves a Prometheus-style /metrics
// page over HTTP, -dash prints a once-per-second status line while
// serving, and -stats-json writes the final counters (plus recovery
// stats, if any) to a file on shutdown.
//
// Resilience: -max-conns, -max-inflight, -rate-limit and -burst bound
// admission (excess work is shed with BUSY + retry-after, never half
// executed); -idle-timeout and -write-timeout bound connection
// lifetimes. SIGINT/SIGTERM drains gracefully — in-flight batches
// commit and ack, buffered pipelines are answered DRAINING — bounded
// by -drain-timeout; a second signal cuts the remaining connections.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flit/internal/core"
	"flit/internal/dstruct"
	"flit/internal/pmem"
	"flit/internal/server"
	"flit/internal/store"
	"flit/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7117", "TCP listen address (ignored with -unix)")
	unixPath := flag.String("unix", "", "serve on a unix socket at this path instead of TCP")
	shards := flag.Int("shards", 8, "store shard count")
	policy := flag.String("policy", core.PolicyHT, "persistence policy")
	modeName := flag.String("mode", dstruct.Automatic.String(), "durability mode (automatic|nvtraverse|manual)")
	expected := flag.Int("expected-keys", 1<<16, "expected keyspace size (memory sizing)")
	records := flag.Uint64("records", 0, "prefill this many records in-process before serving")
	batch := flag.Int("batch", 64, "max operations per group commit")
	maxConns := flag.Int("max-conns", 0, "cap concurrently served connections; excess get one BUSY frame (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "cap store ops executing across all connections; excess batches are shed BUSY (0 = unlimited)")
	rateLimit := flag.Float64("rate-limit", 0, "admission cap in store ops/s; excess batches are shed BUSY with a retry-after hint (0 = unlimited)")
	rateBurst := flag.Int("burst", 0, "admission token-bucket burst (0 = 4*batch)")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections idle at a pipeline head for this long (0 = never)")
	writeTimeout := flag.Duration("write-timeout", 0, "slow-reader budget: responses must be accepted within this (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGINT/SIGTERM before remaining connections are cut")
	threads := flag.Int("load-threads", 4, "prefill parallelism")
	vclock := flag.Bool("vclock", false, "virtual-clock cost mode (no spin latency)")
	metricsOn := flag.Bool("metrics", true, "enable the lock-free metrics core (op histograms, STATS v2, /metrics histogram families)")
	metricsAddr := flag.String("metrics-addr", "", "serve a Prometheus-style /metrics page over HTTP on this address")
	dash := flag.Bool("dash", false, "print a once-per-second status line while serving (needs -metrics)")
	statsJSON := flag.String("stats-json", "", "write final stats (and recovery stats, if any) as JSON to this path on shutdown")
	recoverStore := flag.Bool("recover", false, "crash-simulate the prefilled store and serve the recovered image")
	flag.Parse()

	mode, ok := dstruct.ModeByName(*modeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "flitstored: unknown mode %q (known: %v)\n", *modeName, dstruct.Modes)
		os.Exit(2)
	}
	st, err := store.New(store.Options{
		Shards: *shards, ExpectedKeys: *expected, Policy: *policy,
		Mode: mode, VirtualClock: *vclock,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitstored: %v\n", err)
		os.Exit(2)
	}
	if *records > 0 {
		elapsed, ops := workload.Load(st, *records, *threads)
		fmt.Printf("flitstored: loaded %d records in %v (%.0f ops/s)\n", *records, elapsed.Round(0), ops)
	}
	if *recoverStore {
		// Crash the store the honest way — take the persistent image with
		// unfenced write-backs dropped — and serve the rebuild, so the
		// flit_recovery_seconds families describe a real recovery.
		wm := st.Heap().Watermark()
		img := st.Mem().CrashImage(pmem.DropUnfenced, 1)
		mem2 := pmem.NewFromImage(img, st.Mem().Config())
		st2, rs, err := store.Recover(mem2, wm, st.Opts())
		if err != nil {
			fmt.Fprintf(os.Stderr, "flitstored: recover: %v\n", err)
			os.Exit(2)
		}
		st = st2
		fmt.Printf("flitstored: recovered %d keys in %v across %d shards\n",
			rs.Keys, rs.Elapsed.Round(0), len(rs.Shards))
	}

	network, addr := "tcp", *listen
	if *unixPath != "" {
		network, addr = "unix", *unixPath
		os.Remove(addr) // stale socket from a previous run
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitstored: %v\n", err)
		os.Exit(2)
	}
	srv := server.New(st, server.Options{
		MaxBatch: *batch, Metrics: *metricsOn,
		MaxConns: *maxConns, MaxInflight: *maxInflight,
		RateLimit: *rateLimit, RateBurst: *rateBurst,
		IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
		Logger: log.New(os.Stderr, "flitstored: ", 0),
	})

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flitstored: metrics listener: %v\n", err)
			os.Exit(2)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		metricsSrv = &http.Server{Handler: mux}
		go metricsSrv.Serve(mln)
		// Print the bound address so :0 is usable under test harnesses.
		fmt.Printf("flitstored: metrics on http://%s/metrics\n", mln.Addr())
	}

	stopDash := func() {}
	if *dash {
		ring, stop := srv.StartSampler(time.Second, 600)
		if ring == nil {
			fmt.Fprintln(os.Stderr, "flitstored: -dash needs -metrics")
			os.Exit(2)
		}
		dashDone := make(chan struct{})
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-dashDone:
					return
				case <-tick.C:
				}
				if s, ok := ring.Last(); ok {
					fmt.Printf("flitstored: %8.0f ops/s | p50 %v p99 %v | %.1f ops/batch | %.2f pwbs/op %.2f pfences/op | %d conns\n",
						s.OpsPerSec, time.Duration(s.P50Ns).Round(time.Nanosecond),
						time.Duration(s.P99Ns).Round(time.Nanosecond),
						s.OpsPerBatch, s.PWBsPerOp, s.PFencesPerOp, s.Conns)
				}
			}
		}()
		stopDash = func() { close(dashDone); stop() }
	}

	// First signal: graceful drain — stop accepting, answer buffered
	// pipelines DRAINING, let in-flight batches commit and ack, then
	// close (bounded by -drain-timeout). Second signal: cut hard.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "flitstored: %v: draining (budget %v; signal again to force close)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(ctx) }()
		select {
		case err := <-done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "flitstored: drain cut short: %v\n", err)
			}
		case <-sigc:
			fmt.Fprintln(os.Stderr, "flitstored: second signal: closing now")
			srv.Close()
		}
	}()

	fmt.Printf("flitstored: serving %s/%s on %s://%s (batch %d)\n",
		st.Opts().Policy, mode, network, ln.Addr(), *batch)
	err = srv.Serve(ln)
	stopDash()
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	stats := srv.Stats()
	fmt.Printf("flitstored: served %d ops in %d batches over %d conns (%.1f ops/batch)\n",
		stats.OpsServed, stats.Batches, stats.Conns,
		float64(stats.OpsServed)/max(1, float64(stats.Batches)))
	if shed := stats.ShedBusy + stats.ShedDraining + stats.ConnsRejected; shed > 0 || len(stats.ConnErrors) > 0 {
		fmt.Printf("flitstored: shed %d busy + %d draining ops, rejected %d conns, conn errors %v\n",
			stats.ShedBusy, stats.ShedDraining, stats.ConnsRejected, stats.ConnErrors)
	}
	if *statsJSON != "" {
		out := struct {
			Stats    server.Stats         `json:"stats"`
			Recovery *store.RecoveryStats `json:"recovery,omitempty"`
		}{stats, st.LastRecovery()}
		data, jerr := json.MarshalIndent(out, "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(*statsJSON, append(data, '\n'), 0o644)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "flitstored: stats-json: %v\n", jerr)
			os.Exit(1)
		}
		fmt.Printf("flitstored: wrote final stats to %s\n", *statsJSON)
	}
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	if err != nil && err != server.ErrClosed {
		fmt.Fprintf(os.Stderr, "flitstored: %v\n", err)
		os.Exit(1)
	}
}
