// Command flitload is the pipelining load generator for flitstored: it
// drives a YCSB mix through pipelined connections (closed-loop windows,
// or open-loop fixed-rate arrivals with -rate) and reports
// client-observed throughput and tail latency together with the
// server-side instruction deltas — pwbs and fences per acknowledged
// operation, the quantities group commit amortizes.
//
// Against an admission-controlled server the generator keeps running:
// BUSY responses are counted as shed (separately from goodput) and
// reported with the server's own shed counter; with -rate and
// -max-inflight, open-loop arrivals over the inflight cap are dropped
// client-side and counted too.
//
// Usage:
//
//	flitload -addr 127.0.0.1:7117 -load -mix a -dist zipfian -depth 16 -duration 5s
//	flitload -unix /tmp/flitstored.sock -mix c -conns 4 -rate 50000
//	flitload -addr 127.0.0.1:7117 -ping
//	flitload -scrape http://127.0.0.1:9117/metrics
//
// While a run is in flight a once-per-second progress line goes to
// stderr (suppressed under -json); -live upgrades it to a combined
// client+server line by polling STATS on a dedicated connection.
// -scrape fetches a /metrics URL, validates the exposition with the
// same parser the tests use, dumps the page to stdout and exits — the
// CI scrape check with no extra dependencies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"flit/internal/client"
	"flit/internal/metrics"
	"flit/internal/server"
	"flit/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "server TCP address (ignored with -unix)")
	unixPath := flag.String("unix", "", "connect to a unix socket at this path instead of TCP")
	mix := flag.String("mix", "a", "YCSB mix (a-f)")
	dist := flag.String("dist", workload.DistZipfian, "key distribution (uniform|zipfian|latest)")
	zipfS := flag.Float64("zipfs", 0, "zipfian skew (<=1 selects the default)")
	records := flag.Uint64("records", 1<<14, "keyspace size at run start")
	conns := flag.Int("conns", 1, "parallel connections")
	depth := flag.Int("depth", 16, "closed-loop pipeline frames per connection")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in ops/s across all connections (0 = closed loop)")
	maxInflight := flag.Int("max-inflight", 0, "open-loop cap on outstanding frames per connection; arrivals over it are dropped and counted (0 = unbounded)")
	duration := flag.Duration("duration", 3*time.Second, "measured window")
	seed := flag.Int64("seed", 1, "workload seed")
	load := flag.Bool("load", false, "bulk-insert the keyspace over the wire before the run")
	ping := flag.Bool("ping", false, "round-trip one PING and exit (liveness probe)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (silences progress lines)")
	live := flag.Bool("live", false, "combined client+server progress lines (polls STATS on a dedicated connection)")
	scrape := flag.String("scrape", "", "fetch this /metrics URL, validate the exposition, write it to stdout, and exit")
	flag.Parse()

	if *scrape != "" {
		os.Exit(runScrape(*scrape))
	}

	network, target := "tcp", *addr
	if *unixPath != "" {
		network, target = "unix", *unixPath
	}
	dial := func() (net.Conn, error) { return net.Dial(network, target) }

	if *ping {
		c, err := client.Dial(network, target)
		if err == nil {
			err = c.Ping()
			c.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flitload: ping: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("flitload: pong")
		return
	}

	if *load {
		t0 := time.Now()
		if err := client.Load(dial, *records, *conns, max(*depth, 1)); err != nil {
			fmt.Fprintf(os.Stderr, "flitload: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "flitload: loaded %d records in %v\n", *records, time.Since(t0).Round(time.Millisecond))
	}

	sp := client.Spec{
		Mix: *mix, Dist: *dist, ZipfS: *zipfS, Records: *records,
		Conns: *conns, Depth: *depth, Rate: *rate, MaxInflight: *maxInflight,
		Duration: *duration, Seed: *seed,
	}
	if !*jsonOut {
		sp.Progress = progressPrinter(*live, network, target)
	}
	res, err := client.Run(dial, sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitload: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "flitload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	loop := fmt.Sprintf("closed depth=%d", res.Depth)
	if res.Rate > 0 {
		loop = fmt.Sprintf("open rate=%.0f/s", res.Rate)
	}
	fmt.Printf("flitload: mix=%s dist=%s conns=%d %s: %d ops in %v (%.0f ops/s goodput)\n",
		res.Mix, res.Dist, res.Conns, loop, res.Ops, res.Elapsed.Round(time.Millisecond), res.OpsPerSec)
	if res.Shed > 0 || res.Dropped > 0 {
		fmt.Printf("  backpressure: %d shed by server (%.1f%% shed rate, server counted %d), %d dropped at the inflight cap\n",
			res.Shed, 100*res.ShedRate, res.ServerShed, res.Dropped)
	}
	fmt.Printf("  latency p50=%v p95=%v p99=%v max=%v\n", res.P50, res.P95, res.P99, res.Max)
	fmt.Printf("  server: %d ops in %d batches (%.1f ops/batch), %.3f pwbs/op, %.3f pfences/op\n",
		res.ServerOps, res.ServerBatches, res.OpsPerBatch, res.PWBsPerOp, res.PFencesPerOp)
	if res.ServerP50 > 0 {
		fmt.Printf("  server service time p50=%v p95=%v p99=%v max=%v, commit p99=%v\n",
			res.ServerP50, res.ServerP95, res.ServerP99, res.ServerOpMax, res.ServerCommitP99)
	}
}

// progressPrinter builds the Spec.Progress callback: one line per
// second to stderr with the client-side view and — under -live — the
// server-side interval costs polled over a dedicated STATS connection.
// The callback runs on the load generator's monitor goroutine, so the
// dedicated connection never races the workers.
func progressPrinter(live bool, network, target string) func(client.Progress) {
	var statsC *client.Conn
	var prev server.Stats
	if live {
		if c, err := client.Dial(network, target); err == nil {
			statsC = c
			prev, _ = c.Stats()
		} else {
			fmt.Fprintf(os.Stderr, "flitload: -live stats connection: %v\n", err)
		}
	}
	return func(p client.Progress) {
		line := fmt.Sprintf("flitload: %6.1fs %9d ops %9.0f ops/s p50=%-9v p99=%-9v",
			p.Elapsed.Seconds(), p.Ops, p.OpsPerSec, p.P50, p.P99)
		if statsC != nil {
			if st, err := statsC.Stats(); err == nil {
				if dops := st.OpsServed - prev.OpsServed; dops > 0 {
					line += fmt.Sprintf(" | server %.2f pwbs/op %.2f pfences/op %.1f ops/batch",
						float64(st.PWBs-prev.PWBs)/float64(dops),
						float64(st.PFences-prev.PFences)/float64(dops),
						float64(dops)/max(1, float64(st.Batches-prev.Batches)))
				}
				if st.Metrics != nil {
					line += fmt.Sprintf(" p99=%v", time.Duration(st.Metrics.OpP99Ns))
				}
				prev = st
			} else {
				statsC.Close()
				statsC = nil
			}
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// runScrape fetches url, validates the Prometheus exposition with the
// shared parser, writes the page to stdout (the CI artifact) and a
// summary to stderr. Exit status 1 marks an invalid page.
func runScrape(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitload: scrape: %v\n", err)
		return 1
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitload: scrape: read: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "flitload: scrape: HTTP %d\n%s", resp.StatusCode, body)
		return 1
	}
	os.Stdout.Write(body)
	st, err := metrics.ValidateExposition(body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitload: scrape: invalid exposition: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "flitload: scrape ok: %d families, %d samples\n", st.Families, st.Samples)
	return 0
}
