// Command flitload is the pipelining load generator for flitstored: it
// drives a YCSB mix through pipelined connections (closed-loop windows,
// or open-loop fixed-rate arrivals with -rate) and reports
// client-observed throughput and tail latency together with the
// server-side instruction deltas — pwbs and fences per acknowledged
// operation, the quantities group commit amortizes.
//
// Usage:
//
//	flitload -addr 127.0.0.1:7117 -load -mix a -dist zipfian -depth 16 -duration 5s
//	flitload -unix /tmp/flitstored.sock -mix c -conns 4 -rate 50000
//	flitload -addr 127.0.0.1:7117 -ping
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"flit/internal/client"
	"flit/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "server TCP address (ignored with -unix)")
	unixPath := flag.String("unix", "", "connect to a unix socket at this path instead of TCP")
	mix := flag.String("mix", "a", "YCSB mix (a-f)")
	dist := flag.String("dist", workload.DistZipfian, "key distribution (uniform|zipfian|latest)")
	zipfS := flag.Float64("zipfs", 0, "zipfian skew (<=1 selects the default)")
	records := flag.Uint64("records", 1<<14, "keyspace size at run start")
	conns := flag.Int("conns", 1, "parallel connections")
	depth := flag.Int("depth", 16, "closed-loop pipeline frames per connection")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in ops/s across all connections (0 = closed loop)")
	duration := flag.Duration("duration", 3*time.Second, "measured window")
	seed := flag.Int64("seed", 1, "workload seed")
	load := flag.Bool("load", false, "bulk-insert the keyspace over the wire before the run")
	ping := flag.Bool("ping", false, "round-trip one PING and exit (liveness probe)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	flag.Parse()

	network, target := "tcp", *addr
	if *unixPath != "" {
		network, target = "unix", *unixPath
	}
	dial := func() (net.Conn, error) { return net.Dial(network, target) }

	if *ping {
		c, err := client.Dial(network, target)
		if err == nil {
			err = c.Ping()
			c.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flitload: ping: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("flitload: pong")
		return
	}

	if *load {
		t0 := time.Now()
		if err := client.Load(dial, *records, *conns, max(*depth, 1)); err != nil {
			fmt.Fprintf(os.Stderr, "flitload: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "flitload: loaded %d records in %v\n", *records, time.Since(t0).Round(time.Millisecond))
	}

	res, err := client.Run(dial, client.Spec{
		Mix: *mix, Dist: *dist, ZipfS: *zipfS, Records: *records,
		Conns: *conns, Depth: *depth, Rate: *rate,
		Duration: *duration, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "flitload: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "flitload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	loop := fmt.Sprintf("closed depth=%d", res.Depth)
	if res.Rate > 0 {
		loop = fmt.Sprintf("open rate=%.0f/s", res.Rate)
	}
	fmt.Printf("flitload: mix=%s dist=%s conns=%d %s: %d ops in %v (%.0f ops/s)\n",
		res.Mix, res.Dist, res.Conns, loop, res.Ops, res.Elapsed.Round(time.Millisecond), res.OpsPerSec)
	fmt.Printf("  latency p50=%v p95=%v p99=%v max=%v\n", res.P50, res.P95, res.P99, res.Max)
	fmt.Printf("  server: %d ops in %d batches (%.1f ops/batch), %.3f pwbs/op, %.3f pfences/op\n",
		res.ServerOps, res.ServerBatches, res.OpsPerBatch, res.PWBsPerOp, res.PFencesPerOp)
}
