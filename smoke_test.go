// Smoke coverage for the main packages: the nine binaries under cmd/ and
// examples/ have no test files of their own, so this suite builds every
// one of them, runs the quickstart example and a miniature flitstore
// load→crash→recover cycle end-to-end, and drives the flitvet static
// analyzer against a module with one seeded violation per analyzer.
package flit_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; skipping smoke build")
	}
	return path
}

// TestBuildAllMainPackages compiles every cmd/ and examples/ binary into a
// scratch directory.
func TestBuildAllMainPackages(t *testing.T) {
	gobin := goTool(t)
	out, err := exec.Command(gobin, "list", "./cmd/...", "./examples/...").Output()
	if err != nil {
		t.Fatalf("go list: %v\n%s", err, out)
	}
	pkgs := strings.Fields(string(out))
	if len(pkgs) < 9 {
		t.Fatalf("expected at least 9 main packages, go list found %d: %v", len(pkgs), pkgs)
	}
	found := false
	for _, p := range pkgs {
		if p == "flit/cmd/flitvet" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cmd/flitvet missing from the build battery: %v", pkgs)
	}
	args := append([]string{"build", "-o", t.TempDir()}, pkgs...)
	if out, err := exec.Command(gobin, args...).CombinedOutput(); err != nil {
		t.Fatalf("go build %v: %v\n%s", pkgs, err, out)
	}
}

// TestQuickstartEndToEnd runs the quickstart example and checks the
// crash-recovery narrative it prints.
func TestQuickstartEndToEnd(t *testing.T) {
	gobin := goTool(t)
	out, err := exec.Command(gobin, "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"durable linearizability held",
		"post-recovery insert works: true",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

// TestFlitstoreCycleEndToEnd drives the store service binary through a
// small load→run→crash→recover cycle and validates the JSON report shape.
func TestFlitstoreCycleEndToEnd(t *testing.T) {
	gobin := goTool(t)
	out, err := exec.Command(gobin, "run", "./cmd/flitstore",
		"-policy=flit-ht", "-shards=8", "-workload=a", "-dist=zipfian",
		"-records=2000", "-duration=50ms", "-threads=2", "-crash-ops=60", "-quiet",
	).Output()
	if err != nil {
		t.Fatalf("flitstore failed: %v\n%s", err, out)
	}
	var rep struct {
		Config struct {
			Shards int `json:"shards"`
		} `json:"config"`
		Cycles []struct {
			Run struct {
				Ops       uint64  `json:"ops"`
				OpsPerSec float64 `json:"ops_per_sec"`
				P50       int64   `json:"p50_ns"`
				P99       int64   `json:"p99_ns"`
				PWBs      uint64  `json:"pwbs"`
			} `json:"run"`
			Recovery *struct {
				Shards int     `json:"shards"`
				Keys   int     `json:"keys_recovered"`
				Ns     int64   `json:"elapsed_ns"`
				Par    float64 `json:"parallel_speedup"`
			} `json:"recovery"`
		} `json:"cycles"`
		Check string `json:"check"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out)
	}
	if rep.Check != "ok" {
		t.Fatalf("checker verdict %q, want ok", rep.Check)
	}
	if rep.Config.Shards != 8 || len(rep.Cycles) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	c := rep.Cycles[0]
	if c.Run.Ops == 0 || c.Run.OpsPerSec <= 0 || c.Run.P50 <= 0 || c.Run.P99 < c.Run.P50 || c.Run.PWBs == 0 {
		t.Fatalf("implausible run stats: %+v", c.Run)
	}
	if c.Recovery == nil || c.Recovery.Shards != 8 || c.Recovery.Keys == 0 || c.Recovery.Ns <= 0 {
		t.Fatalf("implausible recovery stats: %+v", c.Recovery)
	}
}

// TestFlitstoredLoadgenEndToEnd boots the network daemon on a unix
// socket, probes it with the load generator's ping, drives a short
// pipelined run, and checks the server reports group-commit batching.
// The binaries are built once and executed directly (not `go run`) so
// signals reach the daemon and no orphaned grandchild can outlive the
// test.
func TestFlitstoredLoadgenEndToEnd(t *testing.T) {
	gobin := goTool(t)
	dir := t.TempDir()
	if out, err := exec.Command(gobin, "build", "-o", dir, "./cmd/flitstored", "./cmd/flitload").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	stored := filepath.Join(dir, "flitstored")
	load := filepath.Join(dir, "flitload")
	sock := filepath.Join(dir, "flitstored.sock")

	srv := exec.Command(stored, "-unix", sock, "-shards", "4", "-records", "1024", "-vclock")
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { srv.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			<-done
		}
		t.Logf("flitstored output:\n%s", srvOut.String())
		if !strings.Contains(srvOut.String(), "served") {
			t.Errorf("flitstored shutdown summary missing from output")
		}
	}()

	// Await readiness via the liveness probe.
	deadline := time.Now().Add(30 * time.Second)
	for {
		out, err := exec.Command(load, "-unix", sock, "-ping").CombinedOutput()
		if err == nil && strings.Contains(string(out), "pong") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flitstored never became ready: %v\n%s\nserver:\n%s", err, out, srvOut.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	out, err := exec.Command(load,
		"-unix", sock, "-mix", "a", "-dist", "zipfian", "-records", "1024",
		"-conns", "2", "-depth", "16", "-duration", "200ms", "-json").Output()
	if err != nil {
		t.Fatalf("flitload failed: %v\n%s\nserver:\n%s", err, out, srvOut.String())
	}
	var res struct {
		Ops         uint64  `json:"ops"`
		ServerOps   uint64  `json:"server_ops"`
		Batches     uint64  `json:"server_batches"`
		OpsPerBatch float64 `json:"ops_per_batch"`
		PWBsPerOp   float64 `json:"pwbs_per_op"`
		P50         int64   `json:"p50_ns"`
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("flitload output is not valid JSON: %v\n%s", err, out)
	}
	if res.Ops == 0 || res.ServerOps == 0 || res.Batches == 0 {
		t.Fatalf("no traffic recorded: %+v", res)
	}
	if res.OpsPerBatch <= 1.5 {
		t.Fatalf("ops/batch = %.2f at depth 16: the server is not batching", res.OpsPerBatch)
	}
	if res.PWBsPerOp <= 0 || res.P50 <= 0 {
		t.Fatalf("implausible run stats: %+v", res)
	}
}

// TestFlitstoredObservabilityEndToEnd exercises the observability layer
// through the real binaries: flitstored boots with a crash-recovered
// store, an HTTP /metrics endpoint, and a stats-json sink; flitload
// drives traffic with -live progress lines, validates the exposition
// page with -scrape, and reports the STATS v2 server-side quantiles in
// its JSON result; the shutdown stats file carries recovery stats.
func TestFlitstoredObservabilityEndToEnd(t *testing.T) {
	gobin := goTool(t)
	dir := t.TempDir()
	if out, err := exec.Command(gobin, "build", "-o", dir, "./cmd/flitstored", "./cmd/flitload").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	stored := filepath.Join(dir, "flitstored")
	load := filepath.Join(dir, "flitload")
	sock := filepath.Join(dir, "flitstored.sock")
	statsPath := filepath.Join(dir, "stats.json")

	srv := exec.Command(stored, "-unix", sock, "-shards", "4", "-records", "1024",
		"-vclock", "-recover", "-metrics-addr", "127.0.0.1:0", "-stats-json", statsPath)
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	srvDone := make(chan struct{})
	go func() { srv.Wait(); close(srvDone) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Process.Signal(os.Interrupt)
		select {
		case <-srvDone:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			<-srvDone
		}
	}
	defer stop()

	deadline := time.Now().Add(30 * time.Second)
	for {
		out, err := exec.Command(load, "-unix", sock, "-ping").CombinedOutput()
		if err == nil && strings.Contains(string(out), "pong") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flitstored never became ready: %v\n%s\nserver:\n%s", err, out, srvOut.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(srvOut.String(), "recovered 1024 keys") {
		t.Fatalf("server did not report the boot-time recovery:\n%s", srvOut.String())
	}
	// The daemon prints the bound metrics address so :0 works here.
	var metricsURL string
	for _, line := range strings.Split(srvOut.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "flitstored: metrics on "); ok {
			metricsURL = strings.TrimSpace(rest)
		}
	}
	if metricsURL == "" {
		t.Fatalf("server never printed the metrics address:\n%s", srvOut.String())
	}

	// A -live run: progress lines go to stderr, the result to stdout.
	var liveOut, liveErr bytes.Buffer
	liveCmd := exec.Command(load, "-unix", sock, "-mix", "a", "-dist", "zipfian",
		"-records", "1024", "-conns", "2", "-depth", "16", "-duration", "1300ms", "-live")
	liveCmd.Stdout, liveCmd.Stderr = &liveOut, &liveErr
	if err := liveCmd.Run(); err != nil {
		t.Fatalf("flitload -live failed: %v\n%s%s", err, liveOut.String(), liveErr.String())
	}
	if !strings.Contains(liveErr.String(), "ops/s") || !strings.Contains(liveErr.String(), "pwbs/op") {
		t.Fatalf("-live printed no combined progress line:\n%s", liveErr.String())
	}
	if !strings.Contains(liveOut.String(), "server service time") {
		t.Fatalf("final report missing server-side quantiles:\n%s", liveOut.String())
	}

	// The scrape mode validates the exposition with the shared parser.
	var scrapeOut, scrapeErr bytes.Buffer
	scrapeCmd := exec.Command(load, "-scrape", metricsURL)
	scrapeCmd.Stdout, scrapeCmd.Stderr = &scrapeOut, &scrapeErr
	if err := scrapeCmd.Run(); err != nil {
		t.Fatalf("flitload -scrape failed: %v\n%s", err, scrapeErr.String())
	}
	for _, want := range []string{
		"flit_op_seconds_bucket{op=\"put\",le=\"+Inf\"}",
		"flit_batch_ops_sum",
		"flit_recovery_seconds{shard=\"0\"}",
		"flit_recovery_keys 1024",
	} {
		if !strings.Contains(scrapeOut.String(), want) {
			t.Fatalf("scrape missing %q:\n%s", want, scrapeOut.String())
		}
	}

	// A -json run must carry the STATS v2 server-side quantiles.
	out, err := exec.Command(load, "-unix", sock, "-mix", "a", "-records", "1024",
		"-conns", "1", "-depth", "8", "-duration", "150ms", "-json").Output()
	if err != nil {
		t.Fatalf("flitload -json failed: %v\n%s", err, out)
	}
	var res struct {
		Ops       uint64 `json:"ops"`
		ServerP50 int64  `json:"server_p50_ns"`
		ServerP99 int64  `json:"server_p99_ns"`
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("flitload output is not valid JSON: %v\n%s", err, out)
	}
	if res.Ops == 0 || res.ServerP50 <= 0 || res.ServerP99 < res.ServerP50 {
		t.Fatalf("server quantiles missing from JSON result: %+v", res)
	}

	// Shutdown writes the final stats + recovery JSON.
	stop()
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats-json not written: %v\nserver:\n%s", err, srvOut.String())
	}
	var final struct {
		Stats struct {
			Version   int    `json:"v"`
			OpsServed uint64 `json:"ops_served"`
			Metrics   *struct {
				OpP99Ns int64 `json:"op_p99_ns"`
			} `json:"metrics"`
		} `json:"stats"`
		Recovery *struct {
			Keys int `json:"Keys"`
		} `json:"recovery"`
	}
	if err := json.Unmarshal(data, &final); err != nil {
		t.Fatalf("stats-json is not valid JSON: %v\n%s", err, data)
	}
	if final.Stats.Version != 2 || final.Stats.OpsServed == 0 ||
		final.Stats.Metrics == nil || final.Stats.Metrics.OpP99Ns <= 0 {
		t.Fatalf("stats-json missing v2 metrics: %s", data)
	}
	if final.Recovery == nil || final.Recovery.Keys != 1024 {
		t.Fatalf("stats-json missing recovery stats: %s", data)
	}
}

// TestFlitvetEndToEnd builds the flitvet static-analysis driver and runs
// it against a throwaway module seeded with exactly one violation per
// analyzer: a raw pmem store (persistraw), a thread handle leaked on an
// early return (handleclose), a response written before the batch
// commits (ackorder), and an fmt call on a //flit:hotpath function
// (hotpath). flitvet must exit 1 and name all four analyzers.
func TestFlitvetEndToEnd(t *testing.T) {
	gobin := goTool(t)
	bin := filepath.Join(t.TempDir(), "flitvet")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/flitvet").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/flitvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("go.mod", "module vetcheck\n\ngo 1.24\n")
	// The import path suffix internal/pmem makes this stub the
	// protocol-owning package in the analyzers' eyes.
	write("internal/pmem/pmem.go", `package pmem

type Addr uint64

type Thread struct{}

func (t *Thread) Store(a Addr, v uint64) {}
func (t *Thread) Release()               {}

type Memory struct{}

func (m *Memory) RegisterThread() *Thread { return &Thread{} }
`)
	// ackorder scope: a batch carrier type in an internal/server-suffixed
	// package, acked between the effect and the commit.
	write("internal/server/server.go", `package server

type Batch struct{}

func (b *Batch) Put(k, v string) {}
func (b *Batch) Commit()         {}

func writeResp() {}

func Handle(b *Batch) {
	b.Put("k", "v")
	writeResp()
	b.Commit()
}
`)
	write("app/app.go", `package app

import (
	"errors"
	"fmt"

	"vetcheck/internal/pmem"
)

var errBusy = errors.New("busy")

// rawStore bypasses the policy skeleton: persistraw.
func rawStore(t *pmem.Thread, a pmem.Addr, v uint64) {
	t.Store(a, v)
}

// leakOnError drops the thread handle on the early return: handleclose.
func leakOnError(m *pmem.Memory, bad bool) error {
	t := m.RegisterThread()
	if bad {
		return errBusy
	}
	t.Release()
	return nil
}

// hot allocates via fmt on an annotated hot path: hotpath.
//
//flit:hotpath
func hot(v int) string {
	return fmt.Sprintf("%d", v)
}

var _ = rawStore
var _ = leakOnError
var _ = hot
`)

	out, err := exec.Command(bin, "-dir", mod, "./...").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("flitvet on seeded module: want exit 1, got err=%v\n%s", err, out)
	}
	for _, analyzer := range []string{"persistraw", "handleclose", "ackorder", "hotpath"} {
		if !strings.Contains(string(out), analyzer+":") {
			t.Errorf("flitvet output missing a %s finding:\n%s", analyzer, out)
		}
	}
}
