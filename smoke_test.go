// Smoke coverage for the main packages: the eight binaries under cmd/ and
// examples/ have no test files of their own, so this suite builds every
// one of them and runs the quickstart example and a miniature flitstore
// load→crash→recover cycle end-to-end.
package flit_test

import (
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; skipping smoke build")
	}
	return path
}

// TestBuildAllMainPackages compiles every cmd/ and examples/ binary into a
// scratch directory.
func TestBuildAllMainPackages(t *testing.T) {
	gobin := goTool(t)
	out, err := exec.Command(gobin, "list", "./cmd/...", "./examples/...").Output()
	if err != nil {
		t.Fatalf("go list: %v\n%s", err, out)
	}
	pkgs := strings.Fields(string(out))
	if len(pkgs) < 8 {
		t.Fatalf("expected at least 8 main packages, go list found %d: %v", len(pkgs), pkgs)
	}
	args := append([]string{"build", "-o", t.TempDir()}, pkgs...)
	if out, err := exec.Command(gobin, args...).CombinedOutput(); err != nil {
		t.Fatalf("go build %v: %v\n%s", pkgs, err, out)
	}
}

// TestQuickstartEndToEnd runs the quickstart example and checks the
// crash-recovery narrative it prints.
func TestQuickstartEndToEnd(t *testing.T) {
	gobin := goTool(t)
	out, err := exec.Command(gobin, "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"durable linearizability held",
		"post-recovery insert works: true",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

// TestFlitstoreCycleEndToEnd drives the store service binary through a
// small load→run→crash→recover cycle and validates the JSON report shape.
func TestFlitstoreCycleEndToEnd(t *testing.T) {
	gobin := goTool(t)
	out, err := exec.Command(gobin, "run", "./cmd/flitstore",
		"-policy=flit-ht", "-shards=8", "-workload=a", "-dist=zipfian",
		"-records=2000", "-duration=50ms", "-threads=2", "-crash-ops=60", "-quiet",
	).Output()
	if err != nil {
		t.Fatalf("flitstore failed: %v\n%s", err, out)
	}
	var rep struct {
		Config struct {
			Shards int `json:"shards"`
		} `json:"config"`
		Cycles []struct {
			Run struct {
				Ops       uint64  `json:"ops"`
				OpsPerSec float64 `json:"ops_per_sec"`
				P50       int64   `json:"p50_ns"`
				P99       int64   `json:"p99_ns"`
				PWBs      uint64  `json:"pwbs"`
			} `json:"run"`
			Recovery *struct {
				Shards int     `json:"shards"`
				Keys   int     `json:"keys_recovered"`
				Ns     int64   `json:"elapsed_ns"`
				Par    float64 `json:"parallel_speedup"`
			} `json:"recovery"`
		} `json:"cycles"`
		Check string `json:"check"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out)
	}
	if rep.Check != "ok" {
		t.Fatalf("checker verdict %q, want ok", rep.Check)
	}
	if rep.Config.Shards != 8 || len(rep.Cycles) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	c := rep.Cycles[0]
	if c.Run.Ops == 0 || c.Run.OpsPerSec <= 0 || c.Run.P50 <= 0 || c.Run.P99 < c.Run.P50 || c.Run.PWBs == 0 {
		t.Fatalf("implausible run stats: %+v", c.Run)
	}
	if c.Recovery == nil || c.Recovery.Shards != 8 || c.Recovery.Keys == 0 || c.Recovery.Ns <= 0 {
		t.Fatalf("implausible recovery stats: %+v", c.Recovery)
	}
}
